"""Versioned on-disk persistence for fitted pipelines.

A saved pipeline is a *directory* containing exactly two files:

* ``manifest.json`` — the pipeline's **declarative spec** (a
  :class:`~repro.plan.PipelineSpec` document validated by the spec
  layer) plus every JSON-able part of the *fitted* state (smoother
  configs, selected basis sizes, detector state) and the format header;
* ``arrays.npz`` — every NumPy array of the fitted state (evaluation
  grid, detector arrays such as isolation-tree nodes or support
  vectors), compressed, loaded with ``allow_pickle=False``.

Array values inside the manifest are replaced by ``{"__array__": key}``
placeholders naming their entry in the ``.npz`` bundle, so the manifest
stays human-readable and the bundle stays pickle-free.  Nothing in the
format references user code paths: loading never imports or executes
anything beyond the :mod:`repro` registries (bases, mappings,
detectors) via the plan compiler.

Manifest format and versioning rules
------------------------------------
The manifest header is ``{"format": "repro-pipeline",
"format_version": N, "repro_version": ..., "spec": {...},
"state": {...}}``.

* ``format_version`` is a single integer, currently ``2``.  Version 2
  splits the document into a declarative ``spec`` section (parsed and
  validated by :mod:`repro.plan.specs`) and a fitted ``state`` section;
  version 1 kept hand-rolled config dicts inside ``state`` and is still
  read via an explicit translation (:func:`_translate_v1`).  Anything
  else raises :class:`~repro.exceptions.PersistenceError` — fail loudly
  rather than mis-read arrays.
* *Adding* optional keys to ``state`` is backward compatible and does
  **not** bump the version (the state reader ignores unknown keys).
  The ``spec`` section is different: it is parsed by the strict spec
  validators (unknown keys are rejected with the valid-key list), so
  **any** new spec key — like renaming/removing keys, changing array
  shapes/semantics, or changing the placeholder scheme — **must** bump
  ``format_version`` and teach :func:`load_pipeline` to translate old
  versions explicitly.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path
from zipfile import BadZipFile

import numpy as np

from repro import __version__
from repro.core.pipeline import GeometricOutlierPipeline
from repro.engine import ExecutionContext
from repro.exceptions import PersistenceError, ReproError

__all__ = [
    "FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
    "MANIFEST_NAME",
    "ARRAYS_NAME",
    "save_pipeline",
    "load_pipeline",
    "read_spec",
]

#: Current manifest format version (see the module docstring).
FORMAT_VERSION = 2

#: Every version :func:`load_pipeline` can read.
SUPPORTED_VERSIONS = (1, 2)

MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"

_ARRAY_MARKER = "__array__"

#: Fitted-state sections every manifest must provide to be restorable.
_REQUIRED_STATE_KEYS = ("smoothers", "eval_grid", "detector")


def _flatten(node, path: str, arrays: dict):
    """Replace every ndarray in ``node`` by a placeholder, collecting arrays."""
    if isinstance(node, np.ndarray):
        arrays[path] = node
        return {_ARRAY_MARKER: path}
    if isinstance(node, dict):
        return {key: _flatten(value, f"{path}.{key}" if path else key, arrays)
                for key, value in node.items()}
    if isinstance(node, (list, tuple)):
        return [_flatten(value, f"{path}.{i}", arrays) for i, value in enumerate(node)]
    if isinstance(node, (np.integer,)):
        return int(node)
    if isinstance(node, (np.floating,)):
        return float(node)
    if isinstance(node, (np.bool_,)):
        return bool(node)
    return node


def _unflatten(node, arrays):
    """Inverse of :func:`_flatten`: resolve placeholders against ``arrays``."""
    if isinstance(node, dict):
        if set(node.keys()) == {_ARRAY_MARKER}:
            key = node[_ARRAY_MARKER]
            if key not in arrays:
                raise PersistenceError(
                    f"manifest references array {key!r} missing from {ARRAYS_NAME}"
                )
            return arrays[key]
        return {key: _unflatten(value, arrays) for key, value in node.items()}
    if isinstance(node, list):
        return [_unflatten(value, arrays) for value in node]
    return node


def save_pipeline(pipeline: GeometricOutlierPipeline, path, compressed: bool = True) -> Path:
    """Persist a fitted pipeline to directory ``path`` (created if needed).

    ``compressed=False`` stores the array bundle uncompressed
    (``np.savez``): the file is larger, but every member becomes
    memory-mappable, so serving workers can open it zero-copy with
    ``load_pipeline(..., mmap=True)`` — N worker processes on one host
    share a single page-cache copy of the fitted arrays instead of N
    private heaps.

    Writes ``manifest.json`` + ``arrays.npz`` (see the module docstring
    for the format).  The manifest's ``spec`` section is the pipeline's
    :class:`~repro.plan.PipelineSpec`; the ``state`` section holds only
    the fitted artifacts.  Returns the directory path.  The pipeline
    must be fitted; saving never mutates it.
    """
    from repro.plan import pipeline_to_spec

    if not isinstance(pipeline, GeometricOutlierPipeline):
        raise PersistenceError(
            f"can only save GeometricOutlierPipeline, got {type(pipeline).__name__}"
        )
    state = pipeline.export_fitted_state()
    # The declarative parts live in the spec section now; keeping them in
    # the state too would create two divergent sources of truth.  That
    # includes the detector's constructor config: the loader re-injects
    # it from spec.detector.params, so an edited spec section actually
    # governs the restored detector.
    state.pop("config", None)
    state.pop("mapping", None)
    state["detector"] = {
        k: v for k, v in state["detector"].items() if k != "config"
    }
    arrays: dict[str, np.ndarray] = {}
    manifest = {
        "format": "repro-pipeline",
        "format_version": FORMAT_VERSION,
        "repro_version": __version__,
        "spec": pipeline_to_spec(pipeline).to_dict(),
        "state": _flatten(state, "", arrays),
    }
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    with open(path / MANIFEST_NAME, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    savez = np.savez_compressed if compressed else np.savez
    savez(path / ARRAYS_NAME, **arrays)
    return path


def _read_manifest(path: Path) -> dict:
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise PersistenceError(f"no pipeline manifest at {manifest_path}")
    try:
        with open(manifest_path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise PersistenceError(f"cannot read pipeline manifest {manifest_path}: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != "repro-pipeline":
        raise PersistenceError(f"{manifest_path} is not a repro pipeline manifest")
    version = manifest.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        raise PersistenceError(
            f"unsupported pipeline format version {version!r} in {manifest_path} "
            f"(this build reads versions {list(SUPPORTED_VERSIONS)})"
        )
    if "state" not in manifest:
        raise PersistenceError(f"{manifest_path} has no 'state' section")
    if version >= 2 and "spec" not in manifest:
        raise PersistenceError(f"{manifest_path} has no 'spec' section")
    return manifest


def _memmap_npz_member(arrays_path: Path, info: zipfile.ZipInfo) -> np.ndarray:
    """Zero-copy ndarray view of one *stored* (uncompressed) npz member.

    ``np.load`` always streams npz members through zipfile into fresh
    heap buffers, even with ``mmap_mode`` — so a fleet of serving
    workers would each hold a private copy of the fitted arrays.  For a
    ZIP_STORED member the ``.npy`` payload sits contiguously in the
    archive, so we parse the local file header to find it, parse the
    ``.npy`` header for shape/dtype/order, and hand back an
    ``np.memmap`` view straight into the page cache.
    """
    from numpy.lib import format as npy_format

    with open(arrays_path, "rb") as fh:
        fh.seek(info.header_offset)
        local = fh.read(30)
        if len(local) != 30 or local[:4] != b"PK\x03\x04":
            raise PersistenceError(
                f"corrupt zip local header for {info.filename!r} in {arrays_path}"
            )
        name_len = int.from_bytes(local[26:28], "little")
        extra_len = int.from_bytes(local[28:30], "little")
        fh.seek(info.header_offset + 30 + name_len + extra_len)
        version = npy_format.read_magic(fh)
        if version == (1, 0):
            shape, fortran_order, dtype = npy_format.read_array_header_1_0(fh)
        elif version == (2, 0):
            shape, fortran_order, dtype = npy_format.read_array_header_2_0(fh)
        else:
            raise PersistenceError(
                f"unsupported .npy format version {version} for "
                f"{info.filename!r} in {arrays_path}"
            )
        data_offset = fh.tell()
    if dtype.hasobject:
        raise PersistenceError(
            f"array {info.filename!r} in {arrays_path} has object dtype"
        )
    mm = np.memmap(
        arrays_path,
        dtype=dtype,
        mode="r",
        offset=data_offset,
        shape=tuple(shape),
        order="F" if fortran_order else "C",
    )
    return mm


def _read_arrays(path: Path, mmap: bool = False) -> dict:
    """Arrays of the bundle; ``mmap=True`` maps stored members zero-copy.

    With ``mmap`` on, every uncompressed (ZIP_STORED) member comes back
    as a read-only ``np.memmap`` view into the archive file — no heap
    copy, shared page-cache across worker processes.  Deflated members
    (the ``compressed=True`` save default) cannot be mapped and fall
    back to a normal eager read, so ``mmap=True`` is always safe to
    request.
    """
    arrays_path = path / ARRAYS_NAME
    if not arrays_path.is_file():
        raise PersistenceError(f"no pipeline array bundle at {arrays_path}")
    try:
        if mmap:
            arrays: dict = {}
            deflated: list[str] = []
            with zipfile.ZipFile(arrays_path) as zf:
                for info in zf.infolist():
                    key = info.filename[:-4] if info.filename.endswith(".npy") else info.filename
                    if info.compress_type == zipfile.ZIP_STORED and info.file_size > 0:
                        arrays[key] = _memmap_npz_member(arrays_path, info)
                    else:
                        deflated.append(key)
            if deflated:
                with np.load(arrays_path, allow_pickle=False) as bundle:
                    for key in deflated:
                        arrays[key] = bundle[key]
            return arrays
        with np.load(arrays_path, allow_pickle=False) as bundle:
            return {key: bundle[key] for key in bundle.files}
    except (OSError, ValueError, BadZipFile) as exc:
        raise PersistenceError(f"cannot read pipeline arrays {arrays_path}: {exc}") from exc


def _translate_v1(state: dict):
    """Derive the (spec, state) pair of the v2 layout from a v1 ``state``.

    Version-1 manifests carried the declarative configuration as
    hand-rolled dicts inside the state (``config``, ``mapping``, and
    the detector's ``config``); lift those into a validated
    :class:`~repro.plan.PipelineSpec`.  Only JSON scalars are touched,
    so this works on flattened (array-placeholder) state too.
    """
    from repro.plan import DetectorSpec, MappingSpec, PipelineSpec, SmootherSpec
    from repro.plan.compile import _DETECTOR_NAME_BY_CLASS

    for key in ("mapping", "detector"):
        if key not in state:
            raise PersistenceError(f"v1 manifest state is missing {key!r}")
    config = state.get("config", {})
    detector_state = state["detector"]
    detector_name = _DETECTOR_NAME_BY_CLASS.get(detector_state.get("type"))
    if detector_name is None:
        raise PersistenceError(
            f"v1 manifest names unknown detector type {detector_state.get('type')!r}"
        )
    spec = PipelineSpec(
        detector=DetectorSpec(detector_name, dict(detector_state.get("config", {}))),
        mapping=MappingSpec.from_config(state["mapping"]),
        smoother=SmootherSpec(
            smoothing=float(config.get("smoothing", 1e-4)),
            penalty_order=int(config.get("penalty_order", 2)),
            spline_order=int(config.get("spline_order", 4)),
        ),
    )
    return spec, state


def read_spec(path):
    """Read and validate just the declarative spec of a saved pipeline.

    Cheap (no array bundle is opened): used by ``repro plan validate``
    to check manifests in bulk.  V1 manifests are translated through
    the same path :func:`load_pipeline` uses.
    """
    from repro.exceptions import ConfigurationError
    from repro.plan import PipelineSpec

    path = Path(path)
    manifest = _read_manifest(path)
    try:
        if manifest["format_version"] == 1:
            spec, _ = _translate_v1(manifest["state"])
        else:
            spec = PipelineSpec.from_dict(manifest["spec"])
    except ConfigurationError as exc:
        raise PersistenceError(f"invalid pipeline spec in {path}: {exc}") from exc
    return spec


def load_pipeline(
    path,
    context: ExecutionContext | None = None,
    mmap: bool = False,
) -> GeometricOutlierPipeline:
    """Load a pipeline saved by :func:`save_pipeline`, ready to score.

    The declarative section is parsed and validated by the spec layer,
    then lowered through the plan compiler
    (:func:`~repro.plan.restore_pipeline`); the fitted artifacts are
    injected on top — scores are bit-identical to the saved pipeline.
    ``context`` optionally attaches the restored pipeline to a shared
    serving :class:`~repro.engine.ExecutionContext` so repeated loads
    and subsequent scoring share one factorization cache.

    Raises :class:`~repro.exceptions.PersistenceError` when the
    directory, manifest or array bundle is missing, corrupt, or declares
    an unsupported format version.
    """
    from repro.plan import PipelineSpec, restore_pipeline

    path = Path(path)
    if not path.is_dir():
        raise PersistenceError(f"no saved pipeline directory at {path}")
    manifest = _read_manifest(path)
    arrays = _read_arrays(path, mmap=mmap)
    state = _unflatten(manifest["state"], arrays)
    try:
        if manifest["format_version"] == 1:
            spec, state = _translate_v1(state)
        else:
            spec = PipelineSpec.from_dict(manifest["spec"])
    except ReproError as exc:
        raise PersistenceError(f"invalid pipeline spec in {path}: {exc}") from exc
    missing = [key for key in _REQUIRED_STATE_KEYS if key not in state]
    if missing:
        raise PersistenceError(f"manifest state in {path} is missing keys: {missing}")
    # ValueError/TypeError cover hand-edited manifests whose state values
    # have the right keys but the wrong shapes/types (e.g. a string where
    # an array belongs) — NumPy raises those from deep inside the restore
    # and they used to escape as raw tracebacks.
    try:
        return restore_pipeline(spec, state, context=context)
    except (ReproError, ValueError, TypeError) as exc:
        raise PersistenceError(f"cannot restore pipeline from {path}: {exc}") from exc
