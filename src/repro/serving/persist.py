"""Versioned on-disk persistence for fitted pipelines.

A saved pipeline is a *directory* containing exactly two files:

* ``manifest.json`` — every JSON-able part of the fitted state (basis
  and smoother configs, mapping config, detector hyper-parameters and
  scalar state) plus the format header;
* ``arrays.npz`` — every NumPy array of the fitted state (evaluation
  grid, detector arrays such as isolation-tree nodes or support
  vectors), compressed, loaded with ``allow_pickle=False``.

Array values inside the manifest are replaced by ``{"__array__": key}``
placeholders naming their entry in the ``.npz`` bundle, so the manifest
stays human-readable and the bundle stays pickle-free.  Nothing in the
format references user code paths: loading never imports or executes
anything beyond the :mod:`repro` registries (bases, mappings,
detectors).

Manifest format and versioning rules
------------------------------------
The manifest header is ``{"format": "repro-pipeline",
"format_version": N, "repro_version": ..., "state": {...}}``.

* ``format_version`` is a single integer, currently ``1``.  A loader
  accepts exactly the versions it knows (see :data:`FORMAT_VERSION`);
  anything else raises :class:`~repro.exceptions.PersistenceError` —
  fail loudly rather than mis-read arrays.
* *Adding* optional keys to ``state`` is backward compatible and does
  **not** bump the version (loaders must ignore unknown keys).
* *Renaming/removing* keys, changing array shapes/semantics, or
  changing the placeholder scheme **must** bump ``format_version`` and
  teach :func:`load_pipeline` to translate old versions explicitly.
"""

from __future__ import annotations

import json
from pathlib import Path
from zipfile import BadZipFile

import numpy as np

from repro import __version__
from repro.core.pipeline import GeometricOutlierPipeline
from repro.engine import ExecutionContext
from repro.exceptions import PersistenceError, ReproError

__all__ = ["FORMAT_VERSION", "MANIFEST_NAME", "ARRAYS_NAME", "save_pipeline", "load_pipeline"]

#: Current (and only) supported manifest format version.
FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"

_ARRAY_MARKER = "__array__"


def _flatten(node, path: str, arrays: dict):
    """Replace every ndarray in ``node`` by a placeholder, collecting arrays."""
    if isinstance(node, np.ndarray):
        arrays[path] = node
        return {_ARRAY_MARKER: path}
    if isinstance(node, dict):
        return {key: _flatten(value, f"{path}.{key}" if path else key, arrays)
                for key, value in node.items()}
    if isinstance(node, (list, tuple)):
        return [_flatten(value, f"{path}.{i}", arrays) for i, value in enumerate(node)]
    if isinstance(node, (np.integer,)):
        return int(node)
    if isinstance(node, (np.floating,)):
        return float(node)
    if isinstance(node, (np.bool_,)):
        return bool(node)
    return node


def _unflatten(node, arrays):
    """Inverse of :func:`_flatten`: resolve placeholders against ``arrays``."""
    if isinstance(node, dict):
        if set(node.keys()) == {_ARRAY_MARKER}:
            key = node[_ARRAY_MARKER]
            if key not in arrays:
                raise PersistenceError(
                    f"manifest references array {key!r} missing from {ARRAYS_NAME}"
                )
            return arrays[key]
        return {key: _unflatten(value, arrays) for key, value in node.items()}
    if isinstance(node, list):
        return [_unflatten(value, arrays) for value in node]
    return node


def save_pipeline(pipeline: GeometricOutlierPipeline, path) -> Path:
    """Persist a fitted pipeline to directory ``path`` (created if needed).

    Writes ``manifest.json`` + ``arrays.npz`` (see the module docstring
    for the format).  Returns the directory path.  The pipeline must be
    fitted; saving never mutates it.
    """
    if not isinstance(pipeline, GeometricOutlierPipeline):
        raise PersistenceError(
            f"can only save GeometricOutlierPipeline, got {type(pipeline).__name__}"
        )
    state = pipeline.export_fitted_state()
    arrays: dict[str, np.ndarray] = {}
    manifest = {
        "format": "repro-pipeline",
        "format_version": FORMAT_VERSION,
        "repro_version": __version__,
        "state": _flatten(state, "", arrays),
    }
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    with open(path / MANIFEST_NAME, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    np.savez_compressed(path / ARRAYS_NAME, **arrays)
    return path


def _read_manifest(path: Path) -> dict:
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise PersistenceError(f"no pipeline manifest at {manifest_path}")
    try:
        with open(manifest_path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise PersistenceError(f"cannot read pipeline manifest {manifest_path}: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != "repro-pipeline":
        raise PersistenceError(f"{manifest_path} is not a repro pipeline manifest")
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported pipeline format version {version!r} in {manifest_path} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    if "state" not in manifest:
        raise PersistenceError(f"{manifest_path} has no 'state' section")
    return manifest


def _read_arrays(path: Path) -> dict:
    arrays_path = path / ARRAYS_NAME
    if not arrays_path.is_file():
        raise PersistenceError(f"no pipeline array bundle at {arrays_path}")
    try:
        with np.load(arrays_path, allow_pickle=False) as bundle:
            return {key: bundle[key] for key in bundle.files}
    except (OSError, ValueError, BadZipFile) as exc:
        raise PersistenceError(f"cannot read pipeline arrays {arrays_path}: {exc}") from exc


def load_pipeline(path, context: ExecutionContext | None = None) -> GeometricOutlierPipeline:
    """Load a pipeline saved by :func:`save_pipeline`, ready to score.

    ``context`` optionally attaches the restored pipeline to a shared
    serving :class:`~repro.engine.ExecutionContext` so repeated loads
    and subsequent scoring share one factorization cache.

    Raises :class:`~repro.exceptions.PersistenceError` when the
    directory, manifest or array bundle is missing, corrupt, or declares
    an unsupported format version.
    """
    path = Path(path)
    if not path.is_dir():
        raise PersistenceError(f"no saved pipeline directory at {path}")
    manifest = _read_manifest(path)
    arrays = _read_arrays(path)
    state = _unflatten(manifest["state"], arrays)
    try:
        return GeometricOutlierPipeline.from_fitted_state(state, context=context)
    except ReproError as exc:
        raise PersistenceError(f"cannot restore pipeline from {path}: {exc}") from exc
