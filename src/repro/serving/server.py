"""Asyncio HTTP front door for the :class:`~repro.serving.ScoringService`.

The repo's serving layer could micro-batch and stream, but nothing
listened on a socket.  This module is that network entry point — a
stdlib-only HTTP/1.1 server on :mod:`asyncio` streams (no framework),
structured as three small pieces:

* **transport** (:class:`ScoringServer`) — parses requests off asyncio
  streams, dispatches to the :class:`~repro.serving.app.ServingApp`
  routes, frames JSON responses.  CPU-bound scoring never runs on the
  event loop: ``/score`` bodies execute in a worker thread, and
  ``/submit`` tickets are resolved by the background flush task.
* **flush loop** — one background task draining the service's
  micro-batch queue on *max-pending-or-deadline*: a submit that fills
  the queue past ``service.max_pending`` wakes it immediately, an idle
  trickle of requests is flushed after at most ``flush_interval``
  seconds.  Flushes run in a thread (one at a time), so the event loop
  keeps accepting — and shedding — while a batch scores.
* **multi-worker dispatch** (:func:`serve`) — ``workers=N`` forks N
  processes sharing one listening socket (kernel load-balanced
  ``accept``); each worker builds its *own* service and loads each
  ``format_version=2`` manifest itself with ``mmap=True``, so fitted
  arrays are zero-copy views into the page cache (one physical copy
  per host, N logical readers) and **no mutable state is shared** —
  a wedged worker cannot corrupt its siblings, and horizontal scale
  is "same manifest, more processes".

Backpressure: accepted work is bounded by the app's ``high_water``
mark; past it, ``/submit`` sheds with 429 + ``Retry-After`` (see
:meth:`ServingApp.try_submit`).  Shedding costs one JSON parse — the
queue never grows past the mark, so accepted-request latency stays
bounded under arbitrary overload.
"""

from __future__ import annotations

import asyncio
import json
import signal
import socket
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.exceptions import ReproError, ValidationError
from repro.serving.app import JsonResponse, ServingApp, TextResponse
from repro.serving.service import ScoringService

__all__ = ["ScoringServer", "serve", "load_service"]

_MAX_BODY_BYTES = 64 * 1024 * 1024  # refuse request bodies past 64 MB
_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    413: "Payload Too Large", 422: "Unprocessable Entity", 429: "Too Many Requests",
    500: "Internal Server Error",
}


def load_service(
    pipelines: dict[str, str | Path],
    max_pending: int = 256,
    mmap: bool = True,
) -> ScoringService:
    """Build a service and load each named manifest directory into it.

    ``mmap=True`` opens every array bundle zero-copy (stored members
    memory-map straight into the page cache; compressed members fall
    back to an eager read) — the per-worker load path of :func:`serve`.
    """
    from repro.serving.persist import load_pipeline

    service = ScoringService(max_pending=max_pending)
    for name, path in pipelines.items():
        pipeline = load_pipeline(path, context=service.context, mmap=mmap)
        service.register(name, pipeline)
    return service


def _encode_response(resp) -> bytes:
    if isinstance(resp, TextResponse):
        body = resp.body.encode("utf-8")
        content_type = resp.content_type
    else:
        body = json.dumps(resp.body).encode("utf-8")
        content_type = "application/json"
    reason = _REASONS.get(resp.status, "Unknown")
    head = [
        f"HTTP/1.1 {resp.status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: keep-alive",
    ]
    for key, value in resp.headers.items():
        head.append(f"{key}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body


async def _read_request(reader: asyncio.StreamReader):
    """Parse one HTTP/1.1 request; returns (method, path, body) or None on EOF."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        raise ValidationError(f"malformed request line: {request_line!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > _MAX_BODY_BYTES:
        raise ValidationError(f"request body of {length} bytes exceeds the 64 MB cap")
    body = await reader.readexactly(length) if length else b""
    path = target.split("?", 1)[0]
    return method.upper(), path, body


class ScoringServer:
    """One event loop serving one :class:`~repro.serving.app.ServingApp`.

    Parameters
    ----------
    service:
        The scoring service (its ``max_pending`` is the micro-batch
        flush threshold).
    high_water:
        Shed bound on outstanding curves (see :class:`ServingApp`).
    flush_interval:
        Deadline (seconds) after which queued requests are flushed even
        if the batch never fills — the tail-latency bound for a trickle
        of traffic.
    host / port:
        Listen address; ``port=0`` picks a free port (see ``.port``
        after :meth:`start`).  Alternatively pass ``sock`` to adopt an
        already-bound listening socket (the multi-worker path).
    """

    def __init__(
        self,
        service: ScoringService,
        host: str = "127.0.0.1",
        port: int = 0,
        sock: socket.socket | None = None,
        high_water: int = 4096,
        flush_interval: float = 0.05,
        retry_after: float = 1.0,
    ):
        if flush_interval <= 0:
            raise ValidationError(f"flush_interval must be > 0, got {flush_interval!r}")
        self.app = ServingApp(service, high_water=high_water, retry_after=retry_after)
        self.service = service
        self.host = host
        self.port = port
        self._sock = sock
        self.flush_interval = float(flush_interval)
        self._server: asyncio.AbstractServer | None = None
        self._flush_task: asyncio.Task | None = None
        self._flush_wakeup: asyncio.Event | None = None
        self._flush_lock: asyncio.Lock | None = None
        self._waiters: list[tuple[object, asyncio.Future]] = []

    # ------------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._flush_wakeup = asyncio.Event()
        self._flush_lock = asyncio.Lock()
        if self._sock is not None:
            self._server = await asyncio.start_server(self._handle_connection, sock=self._sock)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
        self.port = self._server.sockets[0].getsockname()[1]
        self._flush_task = loop.create_task(self._flush_loop())

    async def close(self) -> None:
        if self._flush_task is not None:
            self._flush_task.cancel()
            try:
                await self._flush_task
            except asyncio.CancelledError:
                pass
            self._flush_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Final drain so no accepted ticket is left pending on shutdown.
        if self.service.outstanding_curves():
            await asyncio.get_running_loop().run_in_executor(None, self.service.flush)
        self._settle_waiters()

    async def serve_forever(self) -> None:  # pragma: no cover - CLI path
        assert self._server is not None, "call start() first"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------ flushing
    def _settle_waiters(self) -> None:
        """Complete the futures of every ticket the last flush resolved."""
        still_waiting = []
        for ticket, future in self._waiters:
            if future.done():  # cancelled, or settled by the submit race guard
                continue
            if ticket.done:
                future.set_result(None)
            else:
                still_waiting.append((ticket, future))
        self._waiters = still_waiting

    async def _do_flush(self) -> None:
        """Run one service flush in a worker thread; settle resolved tickets."""
        async with self._flush_lock:
            await asyncio.get_running_loop().run_in_executor(None, self.service.flush)
        self._settle_waiters()

    async def _flush_loop(self) -> None:
        """max_pending-or-deadline drain of the micro-batch queue."""
        while True:
            try:
                await asyncio.wait_for(
                    self._flush_wakeup.wait(), timeout=self.flush_interval
                )
            except asyncio.TimeoutError:
                pass
            self._flush_wakeup.clear()
            # queue_depth() is the registry's queue gauge — the same
            # value the dispatch wakeup below and /metrics read, so the
            # three can never disagree about whether work is pending.
            if self.service.queue_depth():
                await self._do_flush()

    # ------------------------------------------------------------------ dispatch
    async def _dispatch(self, method: str, path: str, body: bytes) -> JsonResponse:
        loop = asyncio.get_running_loop()
        if path == "/healthz" and method == "GET":
            return self.app.healthz()
        if path == "/stats" and method == "GET":
            return self.app.stats()
        if path == "/metrics" and method == "GET":
            # Rendering walks every instrument — keep it off the loop.
            return await loop.run_in_executor(None, self.app.metrics)
        if path == "/score" and method == "POST":
            # CPU-bound: run the parse+score off the event loop.
            return await loop.run_in_executor(None, self.app.score, body)
        if path == "/submit" and method == "POST":
            outcome = await loop.run_in_executor(None, self.app.try_submit, body)
            if isinstance(outcome, JsonResponse):  # shed (429)
                return outcome
            ticket = outcome
            future: asyncio.Future = loop.create_future()
            self._waiters.append((ticket, future))
            # The background flusher may have drained this ticket between
            # try_submit returning and the waiter registering — settle the
            # future now or it would wait for a flush that never comes.
            if ticket.done and not future.done():
                future.set_result(None)
            if self.service.queue_depth() >= self.service.max_pending:
                self._flush_wakeup.set()
            await future
            return self.app.ticket_response(ticket)
        if path in ("/score", "/submit", "/healthz", "/stats", "/metrics"):
            return JsonResponse(405, {"error": f"{method} not allowed on {path}"})
        return JsonResponse(404, {"error": f"no route {path!r}"})

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except ValidationError as exc:
                    writer.write(_encode_response(JsonResponse(400, {"error": str(exc)})))
                    await writer.drain()
                    break
                except asyncio.IncompleteReadError:
                    break
                if request is None:
                    break
                method, path, body = request
                # A *detached* span: handler coroutines interleave on
                # the event loop, so a thread-local span stack would
                # cross-link concurrent requests' trees.
                span = self.service.telemetry.start_span(
                    "http_request", method=method, route=path
                )
                start = time.perf_counter()
                try:
                    response = await self._dispatch(method, path, body)
                except ValidationError as exc:
                    status = 404 if "no pipeline named" in str(exc) else 400
                    response = JsonResponse(status, {"error": str(exc)})
                except ReproError as exc:
                    response = JsonResponse(422, {"error": f"{type(exc).__name__}: {exc}"})
                except Exception as exc:  # pragma: no cover - defensive
                    response = JsonResponse(500, {"error": f"{type(exc).__name__}: {exc}"})
                elapsed = time.perf_counter() - start
                span.set(status=response.status)
                span.end()
                if span.trace_id is not None:
                    response.headers.setdefault("X-Trace-Id", span.trace_id)
                pipeline = (
                    response.body.get("pipeline")
                    if isinstance(response.body, dict) else None
                )
                self.app.observe_request(path, pipeline, elapsed)
                writer.write(_encode_response(response))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass


# ---------------------------------------------------------------------- workers
def _bind_socket(host: str, port: int) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(512)
    sock.setblocking(False)
    return sock


async def _run_worker_async(
    pipelines: dict,
    sock: socket.socket,
    max_pending: int,
    high_water: int,
    flush_interval: float,
    mmap: bool,
    ready=None,
) -> None:
    service = load_service(pipelines, max_pending=max_pending, mmap=mmap)
    server = ScoringServer(
        service,
        sock=sock,
        high_water=high_water,
        flush_interval=flush_interval,
    )
    await server.start()
    if ready is not None:
        ready.set()
    try:
        await server.serve_forever()
    finally:
        await server.close()


def _worker_main(
    pipelines: dict,
    sock: socket.socket,
    max_pending: int,
    high_water: int,
    flush_interval: float,
    mmap: bool,
) -> None:  # pragma: no cover - exercised via subprocess in the bench/tests
    # Workers die on SIGTERM from the parent; restore default SIGINT so a
    # ^C on the foreground process group doesn't stack tracebacks.
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    try:
        asyncio.run(
            _run_worker_async(
                pipelines, sock, max_pending, high_water, flush_interval, mmap
            )
        )
    except KeyboardInterrupt:
        pass


def serve(
    pipelines: dict[str, str | Path],
    host: str = "127.0.0.1",
    port: int = 8000,
    workers: int = 1,
    max_pending: int = 256,
    high_water: int = 4096,
    flush_interval: float = 0.05,
    mmap: bool = True,
) -> None:  # pragma: no cover - long-running CLI entry point
    """Serve ``pipelines`` (name → manifest dir) over HTTP until killed.

    ``workers > 1`` forks that many processes sharing one bound listening
    socket; each loads its own manifests (``mmap=True`` → one page-cache
    copy of the arrays per host) and shares no mutable state with its
    siblings.  The parent only supervises: a SIGINT/SIGTERM tears the
    fleet down.
    """
    import multiprocessing

    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    # SIGTERM (the polite kill) must tear the fleet down like ^C does:
    # with the default disposition the parent dies mid-join and orphans
    # its forked workers.  Raising SystemExit in the main thread instead
    # unwinds through the finally blocks below, which terminate them.
    if signal.getsignal(signal.SIGTERM) is signal.SIG_DFL:
        signal.signal(
            signal.SIGTERM,
            lambda signum, frame: sys.exit(128 + signum),
        )
    sock = _bind_socket(host, port)
    bound_port = sock.getsockname()[1]
    print(
        f"repro serve: listening on http://{host}:{bound_port} "
        f"({workers} worker{'s' if workers != 1 else ''}, "
        f"pipelines: {sorted(pipelines)})",
        flush=True,
    )
    if workers == 1:
        try:
            asyncio.run(
                _run_worker_async(
                    pipelines, sock, max_pending, high_water, flush_interval, mmap
                )
            )
        except KeyboardInterrupt:
            print("repro serve: shutting down", flush=True)
        finally:
            sock.close()
        return

    ctx = multiprocessing.get_context("fork")
    procs = [
        ctx.Process(
            target=_worker_main,
            args=(pipelines, sock, max_pending, high_water, flush_interval, mmap),
            daemon=False,
        )
        for _ in range(workers)
    ]
    for proc in procs:
        proc.start()
    sock.close()  # children hold their inherited copies
    try:
        for proc in procs:
            proc.join()
    except KeyboardInterrupt:
        print("repro serve: shutting down workers", flush=True)
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=5)


def http_request_json(url: str, doc: dict | None = None, timeout: float = 30.0):
    """Tiny JSON-over-HTTP client (stdlib): returns (status, parsed body).

    Used by the CLI smoke path, the bench and the tests; POSTs ``doc``
    when given, GETs otherwise.  Non-2xx statuses are returned, not
    raised, so callers can assert on 429s.
    """
    data = None if doc is None else json.dumps(doc).encode("utf-8")
    req = urllib.request.Request(
        url, data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        payload = exc.read()
        try:
            body = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            body = {"error": payload.decode("latin-1", "replace")}
        return exc.code, body
