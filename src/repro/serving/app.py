"""Route handlers for the HTTP serving front door.

This module is the *application* layer of :mod:`repro.serving.server`:
pure request → response logic over a :class:`~repro.serving.ScoringService`,
with no socket or HTTP-framing code.  The transport hands each parsed
request to :meth:`ServingApp.dispatch`; everything here is testable
without opening a port.

Wire format
-----------
Requests and responses are JSON.  A scoring request body is::

    {"pipeline": "<name or spec hash>",
     "values": [[...], ...],          # (n, m) or (n, m, p) nested lists
     "grid": [...]}                   # (m,) strictly increasing

* ``POST /score``  — score the batch immediately (bypasses the queue).
* ``POST /submit`` — enqueue into the micro-batch queue; the response
  arrives once the batch's flush resolves (``max_pending``-or-deadline,
  see the server's flush loop).  Under overload the request is shed
  **before** being queued with status ``429`` and a ``Retry-After``
  header — the queue is bounded by the high-water mark, never by
  available memory.
* ``GET /healthz`` — liveness + the registered pipeline names.
* ``GET /stats``   — service counters (queue depth, flushes, cache
  hits) plus the front door's own accept/shed/latency counters.
* ``GET /metrics`` — the service telemetry registry in the Prometheus
  text exposition format (queue depth, shed count, per-route latency
  histograms, cache hit rate, kernel timings — every metric in
  :data:`repro.telemetry.CATALOGUE` that traffic has touched).

Pipelines are addressable by their registered *name* or by their
declarative **spec hash** (:func:`repro.plan.spec_hash` of the
pipeline's :class:`~repro.plan.PipelineSpec`) — the stable routing key
that lets a load balancer target "this exact model configuration"
across a fleet of workers without coordinating name assignments.
"""

from __future__ import annotations

import json

import numpy as np

from repro.exceptions import ReproError, ValidationError
from repro.fda.fdata import MFDataGrid

__all__ = ["JsonResponse", "ServingApp", "TextResponse"]


class JsonResponse:
    """Status + JSON-able body + optional extra headers."""

    __slots__ = ("status", "body", "headers")

    def __init__(self, status: int, body: dict, headers: dict | None = None):
        self.status = status
        self.body = body
        self.headers = headers or {}


class TextResponse:
    """Status + plain-text body (the ``/metrics`` exposition format)."""

    __slots__ = ("status", "body", "headers", "content_type")

    def __init__(self, status: int, body: str, headers: dict | None = None,
                 content_type: str = "text/plain; version=0.0.4; charset=utf-8"):
        self.status = status
        self.body = body
        self.headers = headers or {}
        self.content_type = content_type


def _parse_batch(doc: dict) -> MFDataGrid:
    """Lower a request body's ``values``/``grid`` into an MFDataGrid."""
    missing = [key for key in ("values", "grid") if key not in doc]
    if missing:
        raise ValidationError(f"request body is missing keys: {missing}")
    try:
        values = np.asarray(doc["values"], dtype=np.float64)
        grid = np.asarray(doc["grid"], dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"values/grid are not numeric arrays: {exc}") from exc
    if values.ndim == 2:
        values = values[:, :, None]
    if values.ndim != 3:
        raise ValidationError(
            f"values must nest to (n, m) or (n, m, p), got shape {values.shape}"
        )
    return MFDataGrid(values, grid)


class ServingApp:
    """The four routes of the front door, bound to one scoring service.

    Parameters
    ----------
    service:
        The (thread-safe) :class:`~repro.serving.ScoringService` all
        scoring routes go through.
    high_water:
        Load-shedding bound: once the service's outstanding curves
        (queued + mid-flush) reach this mark, ``POST /submit`` sheds
        with 429 instead of queueing.  This is what keeps the queue —
        and the worst-case tail latency of accepted requests — bounded
        under an arrival rate the flush capacity cannot match.
    retry_after:
        Seconds advertised in the 429 ``Retry-After`` header.
    """

    def __init__(self, service, high_water: int = 4096, retry_after: float = 1.0):
        from repro.serving.service import ScoringService

        if not isinstance(service, ScoringService):
            raise ValidationError(
                f"service must be a ScoringService, got {type(service).__name__}"
            )
        if not isinstance(high_water, (int, np.integer)) or high_water < 1:
            raise ValidationError(f"high_water must be a positive int, got {high_water!r}")
        self.service = service
        self.high_water = int(high_water)
        self.retry_after = float(retry_after)
        # The front door's own counters live in the service's telemetry
        # registry, so one /metrics scrape covers transport + service +
        # every instrumented layer beneath them.
        self.telemetry = service.telemetry
        self._c_accepted = self.telemetry.counter("serving_accepted_requests_total")
        self._c_shed = self.telemetry.counter("serving_shed_requests_total")
        # name -> name plus spec-hash -> name aliases, rebuilt on demand.
        self._routes: dict[str, str] = {}

    @property
    def accepted_requests(self) -> int:
        return self._c_accepted.value

    @property
    def shed_requests(self) -> int:
        return self._c_shed.value

    # ------------------------------------------------------------------ routing
    def routes(self) -> dict[str, str]:
        """Current routing table: name and spec-hash keys → pipeline name."""
        from repro.core.pipeline import GeometricOutlierPipeline
        from repro.plan import pipeline_to_spec, spec_hash

        table: dict[str, str] = {}
        for name in self.service.names():
            table[name] = name
            pipeline = self.service._pipeline(name)
            if isinstance(pipeline, GeometricOutlierPipeline):
                try:
                    table[spec_hash(pipeline_to_spec(pipeline))] = name
                except ReproError:  # pragma: no cover - unhashable config
                    pass
        self._routes = table
        return table

    def resolve(self, key: str) -> str:
        """Pipeline name for a request's ``pipeline`` key (name or hash)."""
        if key in self._routes:
            return self._routes[key]
        table = self.routes()  # refresh once for late registrations
        if key in table:
            return table[key]
        raise ValidationError(
            f"no pipeline named (or spec-hashed) {key!r}; "
            f"loaded: {self.service.names()}"
        )

    def pipeline_label(self, name: str | None) -> str:
        """The metric label for a pipeline: its spec hash when it has one.

        Keying the per-route latency series by spec hash (the stable
        routing key) instead of the worker-local registration name means
        histograms from a fleet of workers serving the same model
        configuration aggregate, whatever each worker called it.
        """
        if not name:
            return "-"
        if name not in self._routes:
            self.routes()  # refresh aliases for late registrations
        for key, target in self._routes.items():
            if target == name and key != name:
                return key
        return name

    _ROUTES = ("/score", "/submit", "/healthz", "/stats", "/metrics")

    def observe_request(self, route: str, pipeline: str | None, seconds: float) -> None:
        """Record one end-to-end request into the latency histogram.

        Unknown paths collapse into one ``other`` series so a port scan
        cannot grow the label space without bound.
        """
        if route not in self._ROUTES:
            route = "other"
        self.telemetry.histogram(
            "serving_request_seconds",
            route=route, pipeline=self.pipeline_label(pipeline),
        ).observe(seconds)

    # ------------------------------------------------------------------ routes
    def healthz(self) -> JsonResponse:
        return JsonResponse(200, {"status": "ok", "pipelines": self.service.names()})

    def stats(self) -> JsonResponse:
        body = self.service.stats()
        body["http"] = {
            "accepted_requests": self._c_accepted.value,
            "shed_requests": self._c_shed.value,
            "high_water": self.high_water,
        }
        return JsonResponse(200, body)

    def metrics(self) -> TextResponse:
        """``GET /metrics``: the shared registry as Prometheus text."""
        return TextResponse(200, self.telemetry.to_prometheus())

    def _parse_scoring_request(self, body: bytes) -> tuple[str, MFDataGrid]:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValidationError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise ValidationError(
                f"request body must be a JSON object, got {type(doc).__name__}"
            )
        key = doc.get("pipeline")
        if not isinstance(key, str) or not key:
            raise ValidationError("request body needs a 'pipeline' name or spec hash")
        return self.resolve(key), _parse_batch(doc)

    def score(self, body: bytes) -> JsonResponse:
        """Immediate scoring — no queue, no backpressure beyond the socket."""
        name, mfd = self._parse_scoring_request(body)
        scores = self.service.score(name, mfd)
        self._c_accepted.inc()
        return JsonResponse(200, {"pipeline": name, "scores": scores.tolist()})

    def try_submit(self, body: bytes):
        """Queue a scoring request, or shed it.

        Returns either the queued :class:`~repro.serving.ScoreTicket`
        (the transport awaits its resolution off the event loop) or a
        429 :class:`JsonResponse` when accepting the batch would push
        outstanding work past the high-water mark.  The shed decision is
        made *before* the curves enter the queue, so a sustained
        overload costs one JSON parse per rejected request and no queue
        growth.
        """
        name, mfd = self._parse_scoring_request(body)
        if self.service.outstanding_curves() + mfd.n_samples > self.high_water:
            self._c_shed.inc()
            return JsonResponse(
                429,
                {
                    "error": "queue full — request shed",
                    "outstanding_curves": self.service.outstanding_curves(),
                    "high_water": self.high_water,
                },
                headers={"Retry-After": f"{self.retry_after:g}"},
            )
        ticket = self.service.submit(name, mfd, auto_flush=False)
        self._c_accepted.inc()
        return ticket

    def ticket_response(self, ticket) -> JsonResponse:
        """Response for a resolved ticket (scores or captured error)."""
        try:
            scores = ticket.result()
        except ReproError as exc:
            return JsonResponse(422, {"error": f"{type(exc).__name__}: {exc}"})
        except Exception as exc:  # pragma: no cover - defensive
            return JsonResponse(500, {"error": f"{type(exc).__name__}: {exc}"})
        return JsonResponse(
            200, {"pipeline": ticket.pipeline_name, "scores": scores.tolist()}
        )
