"""Batched scoring service over persisted pipelines.

:class:`ScoringService` is the process-level serving object: it holds
one shared :class:`~repro.engine.ExecutionContext` and any number of
named fitted pipelines (registered in-memory or loaded from disk).  All
scoring routes through the context's
:class:`~repro.engine.FactorizationCache`, so once a pipeline has scored
a single batch on some measurement grid, every later batch on that grid
skips design-matrix building and normal-equation refactorization
entirely — scoring cost degenerates to two GEMMs, the mapping
evaluation and the detector.

Two traffic shapes are supported on top of direct :meth:`~ScoringService.score`:

* **micro-batching** — many small requests are queued with
  :meth:`~ScoringService.submit` and resolved together by
  :meth:`~ScoringService.flush`, which concatenates same-(pipeline,
  grid) requests into one batch so the per-batch fixed costs (solve
  setup, mapping evaluation, detector dispatch) are paid once per group
  instead of once per request;
* **streaming** — :func:`score_stream` walks a large dataset in
  bounded-size chunks, never materializing the full feature matrix.

Beyond fixed-reference traffic, a registered
:class:`~repro.streaming.StreamingDetector` serves *online* routes:
:meth:`ScoringService.stream` feeds chunks through the detector's full
process step (score → adaptive threshold → drift check → window
update), so the same service hosts both batch pipelines and evolving-
reference streams.
"""

from __future__ import annotations

import threading
import time
from typing import Iterator

import numpy as np

from repro.core.pipeline import GeometricOutlierPipeline
from repro.depth.dirout import dirout_scores
from repro.depth.funta import funta_outlyingness
from repro.engine import ExecutionContext
from repro.engine.cache import _grid_key
from repro.exceptions import NotFittedError, ValidationError
from repro.fda.fdata import MFDataGrid, as_mfd
from repro.plan.executor import iter_curve_chunks, run_chunked
from repro.serving.persist import load_pipeline
from repro.streaming.online import StreamBatchResult, StreamingDetector
from repro.streaming.sharded import ShardedStreamingDetector
from repro.telemetry import DEFAULT_SIZE_BUCKETS, Telemetry, resolve_telemetry
from repro.utils.validation import check_int

__all__ = [
    "DepthScorer",
    "ScoreTicket",
    "ScoringService",
    "iter_curve_chunks",
    "score_stream",
]


def score_stream(
    pipeline: GeometricOutlierPipeline,
    data,
    chunk_size: int = 256,
) -> Iterator[np.ndarray]:
    """Yield outlyingness scores for ``data`` in bounded-memory chunks.

    ``data`` is either a single (M)FDataGrid — scored ``chunk_size``
    curves at a time — or an iterator/generator of (M)FDataGrid
    batches, each scored as it arrives (lazily: a true stream source is
    never materialized).  Peak memory is bounded by one chunk's feature
    matrix regardless of the dataset size; concatenating the yielded
    arrays reproduces ``pipeline.score_samples(data)`` exactly, because
    both smoothing and detection are per-curve operations.  The chunk
    bookkeeping is the plan executor's
    :func:`~repro.plan.executor.run_chunked` — the single chunked
    execution path shared with the service streaming routes.
    """
    return run_chunked(pipeline.score_samples, data, chunk_size=chunk_size)


class DepthScorer:
    """A reference-based depth baseline packaged for serving.

    Wraps FUNTA or Dir.out with a fixed reference set so the depth
    substrate serves traffic through the same :class:`ScoringService`
    surface as the pipeline detectors: ``score_samples(batch)`` returns
    outlyingness scores for each incoming curve against the stored
    reference.  All scoring dispatches to the blocked vectorized
    kernels of :mod:`repro.depth._kernels`; when the scorer is
    registered with a service, it adopts the service's
    :class:`~repro.engine.ExecutionContext`, so ``n_jobs > 1`` fans
    kernel blocks across the worker pool (bit-identical results).

    Parameters
    ----------
    kind:
        ``"funta"`` or ``"dirout"``.
    reference:
        (M)FDataGrid of reference curves ("typical" traffic).
    block_bytes:
        Kernel scratch budget per block (default ~64 MB).
    context:
        Optional execution context; inherited from the owning service
        when omitted.
    options:
        Extra scoring options (``trim`` for FUNTA; ``method``,
        ``n_directions``, ``random_state`` for Dir.out).
    """

    _KINDS = ("funta", "dirout")
    _ALLOWED_OPTIONS = {
        "funta": frozenset({"trim"}),
        "dirout": frozenset({"method", "n_directions", "random_state"}),
    }

    def __init__(self, kind: str, reference, block_bytes: int | None = None,
                 context: ExecutionContext | None = None, **options):
        if kind not in self._KINDS:
            raise ValidationError(f"kind must be one of {self._KINDS}, got {kind!r}")
        if context is not None and not isinstance(context, ExecutionContext):
            raise ValidationError(
                f"context must be an ExecutionContext, got {type(context).__name__}"
            )
        unknown = set(options) - self._ALLOWED_OPTIONS[kind]
        if unknown:
            raise ValidationError(
                f"unknown options for kind {kind!r}: {sorted(unknown)}; "
                f"allowed: {sorted(self._ALLOWED_OPTIONS[kind])}"
            )
        if kind == "dirout" and options.get("method", "total") != "total":
            # The mahalanobis detection rule fits its location/scatter on
            # the batch being scored, so a curve's score would depend on
            # which other curves share a merged flush group — breaking
            # the service's per-curve micro-batching invariant.  Only
            # the per-curve "total" score is servable.
            raise ValidationError(
                "DepthScorer('dirout') supports method='total' only: "
                f"got {options['method']!r} (batch-dependent scores cannot "
                "be served through the micro-batching queue)"
            )
        self.kind = kind
        self.reference = as_mfd(reference)
        if self.reference.n_samples < 2:
            raise ValidationError("DepthScorer needs at least 2 reference curves")
        self.block_bytes = block_bytes
        self.context = context
        self.options = options

    def score_samples(self, data) -> np.ndarray:
        """Outlyingness of each curve in ``data`` w.r.t. the reference."""
        mfd = as_mfd(data)
        if self.kind == "funta":
            return funta_outlyingness(
                mfd,
                reference=self.reference,
                trim=self.options.get("trim", 0.0),
                block_bytes=self.block_bytes,
                context=self.context,
            )
        return dirout_scores(
            mfd,
            reference=self.reference,
            method=self.options.get("method", "total"),
            n_directions=self.options.get("n_directions", 200),
            random_state=self.options.get("random_state", 0),
            block_bytes=self.block_bytes,
            context=self.context,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DepthScorer({self.kind!r}, n_reference={self.reference.n_samples})"
        )


def _check_scores_shape(scores, n_samples: int, name: str) -> None:
    """Reject a scorer that returned the wrong number of scores.

    Without this, splitting a merged flush group back per ticket would
    silently hand some tickets truncated (or misaligned) score slices.
    """
    scores = np.asarray(scores)
    if scores.shape != (n_samples,):
        raise ValidationError(
            f"pipeline {name!r} returned scores of shape {scores.shape} "
            f"for a batch of {n_samples} curves"
        )


class ScoreTicket:
    """Handle for one queued scoring request (see :meth:`ScoringService.submit`).

    A ticket resolves **exactly once** — with scores or with a captured
    error — on the flush that drains it.  :meth:`wait` blocks until
    resolution (the hook the HTTP front door uses to await a flush from
    another thread), and :meth:`result` returns the scores or re-raises
    the per-ticket failure.
    """

    __slots__ = ("pipeline_name", "n_samples", "_scores", "_error", "_resolved")

    def __init__(self, pipeline_name: str, n_samples: int):
        self.pipeline_name = pipeline_name
        self.n_samples = n_samples
        self._scores: np.ndarray | None = None
        self._error: BaseException | None = None
        self._resolved = threading.Event()

    @property
    def done(self) -> bool:
        return self._resolved.is_set()

    @property
    def failed(self) -> bool:
        return self._error is not None

    def wait(self, timeout: float | None = None) -> bool:
        """Block until this ticket resolves; True once it has."""
        return self._resolved.wait(timeout)

    def _resolve(self, scores: np.ndarray) -> None:
        if self._resolved.is_set():  # pragma: no cover - double-resolve guard
            raise RuntimeError(f"ticket {self!r} already resolved")
        self._scores = scores
        self._resolved.set()

    def _fail(self, error: BaseException) -> None:
        if self._resolved.is_set():  # pragma: no cover - double-resolve guard
            raise RuntimeError(f"ticket {self!r} already resolved")
        self._error = error
        self._resolved.set()

    def result(self) -> np.ndarray:
        """The scores, once the owning service has flushed this ticket.

        Re-raises the scoring error if this ticket's group failed (a bad
        batch only poisons its own group, never other tickets).
        """
        if self._error is not None:
            raise self._error
        if not self._resolved.is_set():
            raise NotFittedError(
                "ticket is still pending — call ScoringService.flush() first"
            )
        return self._scores

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "failed" if self._error is not None else ("done" if self.done else "pending")
        return f"ScoreTicket({self.pipeline_name!r}, n={self.n_samples}, {status})"


class ScoringService:
    """Registry of named fitted pipelines with a micro-batching queue.

    Parameters
    ----------
    context:
        The shared :class:`~repro.engine.ExecutionContext`; every loaded
        pipeline attaches to its factorization cache.  A private context
        is created when omitted.
    max_pending:
        Auto-flush threshold: :meth:`submit` triggers a :meth:`flush` as
        soon as the queued curve count reaches this bound, keeping queue
        memory (and tail latency) bounded under sustained traffic.
    telemetry:
        A :class:`~repro.telemetry.Telemetry` handle to emit into.  The
        service's counters *are* registry instruments (``stats()`` is a
        view over them), so the service always holds an **enabled**
        handle: explicitly passed > the context's (when enabled) > a
        fresh private one.  Pass a shared handle to aggregate several
        services (or the HTTP front door) into one ``/metrics`` surface.
    """

    def __init__(self, context: ExecutionContext | None = None, max_pending: int = 1024,
                 telemetry=None):
        if context is not None and not isinstance(context, ExecutionContext):
            raise ValidationError(
                f"context must be an ExecutionContext, got {type(context).__name__}"
            )
        self.context = context if context is not None else ExecutionContext()
        self.max_pending = check_int(max_pending, "max_pending", minimum=1)
        telemetry = resolve_telemetry(None, telemetry)  # validates the type
        if not telemetry.enabled:
            context_tel = getattr(self.context, "telemetry", None)
            telemetry = (
                context_tel if context_tel is not None and context_tel.enabled
                else Telemetry()
            )
        self.telemetry = telemetry
        if not self.context.telemetry.enabled:
            self.context.attach_telemetry(telemetry)
        self._c_served_curves = telemetry.counter("serving_served_curves_total")
        self._c_served_requests = telemetry.counter("serving_served_requests_total")
        self._c_failed_requests = telemetry.counter("serving_failed_requests_total")
        self._c_flushes = telemetry.counter("serving_flushes_total")
        self._g_queue_depth = telemetry.gauge("serving_queue_depth_curves")
        self._g_inflight = telemetry.gauge("serving_inflight_curves")
        self._h_flush_curves = telemetry.histogram(
            "serving_flush_curves", buckets=DEFAULT_SIZE_BUCKETS
        )
        self._h_flush_seconds = telemetry.histogram("serving_flush_seconds")
        self._pipelines: dict[str, GeometricOutlierPipeline] = {}
        self._queue: list[tuple[tuple, MFDataGrid, ScoreTicket]] = []
        # One lock guards the queue and every counter: submit/flush are
        # called concurrently by the HTTP front door's request handlers
        # and its background flusher, and unguarded `+=`/list-swap races
        # were exactly the stats-drift and dropped-ticket bugs this
        # layer used to have.  Scoring itself runs outside the lock, so
        # a long flush never blocks enqueueing.  The registry gauges
        # mirror the lock-guarded ints, so readers (`queue_depth`,
        # `/metrics`) never have to take this lock.
        self._lock = threading.Lock()
        self._pending_curves = 0
        self._inflight_curves = 0

    # Counter attributes are registry views so external monitoring keeps
    # its pre-telemetry accessors (`service.served_curves` etc.).
    @property
    def served_curves(self) -> int:
        return self._c_served_curves.value

    @property
    def served_requests(self) -> int:
        return self._c_served_requests.value

    @property
    def failed_requests(self) -> int:
        return self._c_failed_requests.value

    @property
    def flushes(self) -> int:
        return self._c_flushes.value

    def queue_depth(self) -> int:
        """Curves in the micro-batch queue — the single queue-depth
        definition (the ``serving_queue_depth_curves`` gauge) that the
        HTTP front door's flush loop and dispatch backpressure both read.
        """
        return int(self._g_queue_depth.value)

    # ------------------------------------------------------------------ registry
    def register(self, name: str, pipeline) -> None:
        """Attach an already-fitted in-memory scorer under ``name``.

        Accepts a fitted :class:`GeometricOutlierPipeline`, a
        :class:`DepthScorer` or a
        :class:`~repro.streaming.StreamingDetector`; a scorer without
        its own context adopts this service's, so its kernel fan-out
        shares the service's worker pool.  Streaming detectors are
        stateful: they serve through :meth:`stream` /
        :meth:`score_stream` (and stateless :meth:`score`), never
        through the micro-batching queue.
        """
        if not isinstance(name, str) or not name:
            raise ValidationError(f"pipeline name must be a non-empty string, got {name!r}")
        if isinstance(pipeline, (DepthScorer, StreamingDetector, ShardedStreamingDetector)):
            if pipeline.context is None:
                pipeline.context = self.context
            elif not pipeline.context.telemetry.enabled:
                pipeline.context.attach_telemetry(self.telemetry)
            if hasattr(pipeline, "attach_telemetry"):
                pipeline.attach_telemetry(self.telemetry)
            self._pipelines[name] = pipeline
            return
        if not isinstance(pipeline, GeometricOutlierPipeline):
            raise ValidationError(
                "pipeline must be a GeometricOutlierPipeline, DepthScorer or "
                f"StreamingDetector, got {type(pipeline).__name__}"
            )
        if not pipeline._fitted:
            raise NotFittedError("cannot register an unfitted pipeline")
        ctx = getattr(pipeline, "context", None)
        if isinstance(ctx, ExecutionContext) and not ctx.telemetry.enabled:
            ctx.attach_telemetry(self.telemetry)
        self._pipelines[name] = pipeline

    def load(self, name: str, path) -> GeometricOutlierPipeline:
        """Load a persisted pipeline from ``path`` and register it as ``name``.

        The restored pipeline joins this service's context, so pipelines
        serving data on the same measurement grid share cached
        factorizations.
        """
        pipeline = load_pipeline(path, context=self.context)
        self.register(name, pipeline)
        return pipeline

    def names(self) -> list[str]:
        return sorted(self._pipelines)

    def _pipeline(self, name: str) -> GeometricOutlierPipeline:
        try:
            return self._pipelines[name]
        except KeyError:
            raise ValidationError(
                f"no pipeline named {name!r}; loaded: {self.names()}"
            ) from None

    # ------------------------------------------------------------------ scoring
    def score(self, name: str, data) -> np.ndarray:
        """Score one batch immediately (bypassing the queue)."""
        mfd = as_mfd(data)
        scores = self._pipeline(name).score_samples(mfd)
        self._c_served_curves.inc(mfd.n_samples)
        self._c_served_requests.inc()
        return scores

    def submit(self, name: str, data, auto_flush: bool = True) -> ScoreTicket:
        """Queue a batch for micro-batched scoring; returns its ticket.

        Tickets resolve on the next :meth:`flush` (triggered
        automatically once ``max_pending`` curves are queued, unless
        ``auto_flush=False`` — the HTTP front door disables it so the
        event loop, not the submitting request, decides when to pay the
        flush and can run it off-thread).
        """
        mfd = as_mfd(data)
        pipeline = self._pipeline(name)  # fail fast on unknown names
        if isinstance(pipeline, (StreamingDetector, ShardedStreamingDetector)):
            raise ValidationError(
                f"pipeline {name!r} is a streaming detector; its scoring is "
                "stateful (window updates are order-dependent), so it cannot "
                "join the micro-batching queue — use stream() or score()"
            )
        ticket = ScoreTicket(name, mfd.n_samples)
        group_key = (name, _grid_key(mfd.grid), mfd.n_parameters)
        with self._lock:
            self._queue.append((group_key, mfd, ticket))
            self._pending_curves += mfd.n_samples
            self._g_queue_depth.set(self._pending_curves)
            should_flush = auto_flush and self._pending_curves >= self.max_pending
        if should_flush:
            self.flush()
        return ticket

    def flush(self) -> int:
        """Resolve every queued ticket; returns the number resolved.

        Requests are grouped by (pipeline, measurement grid, parameter
        count); each group is concatenated into one batch, pushed
        through the pipeline once, and the score vector is split back
        per ticket.  Grouping preserves per-curve results (smoothing and
        detection are row-independent), so micro-batching is a pure
        throughput optimization.

        Exception safety: every ticket drained by this call resolves,
        whatever happens mid-flush.  A batch that fails to score poisons
        only its own group (the error re-raises from those tickets'
        :meth:`ScoreTicket.result`); if the flush itself is torn down by
        a non-``Exception`` failure (``KeyboardInterrupt``, worker
        ``SystemExit``), the unprocessed tickets are failed with the
        aborting cause rather than silently dropped — the queue was
        already swapped out, so nothing else would ever resolve them.
        """
        with self._lock:
            queue, self._queue = self._queue, []
            self._pending_curves = 0
            self._g_queue_depth.set(0)
            if not queue:
                return 0
            drained_curves = sum(mfd.n_samples for _, mfd, _ in queue)
            self._inflight_curves += drained_curves
            self._g_inflight.set(self._inflight_curves)
        start = time.perf_counter()
        served_curves = 0
        served_requests = 0
        failed_requests = 0
        try:
            groups: dict[tuple, list[tuple[MFDataGrid, ScoreTicket]]] = {}
            for group_key, mfd, ticket in queue:
                groups.setdefault(group_key, []).append((mfd, ticket))
            for (name, _, _), entries in groups.items():
                try:
                    if len(entries) == 1:
                        mfd, ticket = entries[0]
                        scores = self._pipeline(name).score_samples(mfd)
                        _check_scores_shape(scores, mfd.n_samples, name)
                        ticket._resolve(scores)
                    else:
                        first = entries[0][0]
                        merged = MFDataGrid(
                            np.concatenate([mfd.values for mfd, _ in entries], axis=0),
                            first.grid,
                        )
                        scores = self._pipeline(name).score_samples(merged)
                        _check_scores_shape(scores, merged.n_samples, name)
                        offset = 0
                        for mfd, ticket in entries:
                            ticket._resolve(scores[offset : offset + mfd.n_samples])
                            offset += mfd.n_samples
                except Exception as exc:
                    for _, ticket in entries:
                        if not ticket.done:
                            ticket._fail(exc)
                    failed_requests += len(entries)
                    continue
                served_curves += sum(mfd.n_samples for mfd, _ in entries)
                served_requests += len(entries)
        except BaseException as exc:
            # Torn down mid-flush: fail the stragglers, then re-raise.
            for _, _, ticket in queue:
                if not ticket.done:
                    ticket._fail(
                        RuntimeError(f"flush aborted mid-run by {type(exc).__name__}: {exc}")
                    )
                    failed_requests += 1
            raise
        finally:
            with self._lock:
                self._inflight_curves -= drained_curves
                self._g_inflight.set(self._inflight_curves)
            self._c_served_curves.inc(served_curves)
            self._c_served_requests.inc(served_requests)
            self._c_failed_requests.inc(failed_requests)
            self._c_flushes.inc()
            self._h_flush_curves.observe(drained_curves)
            self._h_flush_seconds.observe(time.perf_counter() - start)
        return len(queue)

    def _count_traffic(self, chunk, _result) -> None:
        """`run_chunked` observe hook: fold one served chunk into the stats."""
        self._c_served_curves.inc(chunk.n_samples)
        self._c_served_requests.inc()

    def stream(self, name: str, data, chunk_size: int = 256) -> Iterator[StreamBatchResult]:
        """Online route: feed chunks through streaming detector ``name``.

        Each chunk runs the detector's full
        :meth:`~repro.streaming.StreamingDetector.process` step — score
        against the current reference, update the adaptive threshold,
        check for drift, ingest into the window — and the per-chunk
        :class:`~repro.streaming.StreamBatchResult` is yielded (warm-up
        chunks come back with ``scores=None``).
        """
        detector = self._pipeline(name)
        if not isinstance(detector, (StreamingDetector, ShardedStreamingDetector)):
            raise ValidationError(
                f"pipeline {name!r} is not a StreamingDetector (or sharded "
                "variant); use score_stream() for fixed-reference chunked scoring"
            )
        return run_chunked(
            detector.process, data, chunk_size=chunk_size,
            observe=self._count_traffic, telemetry=self.telemetry,
        )

    def score_stream(self, name: str, data, chunk_size: int = 256) -> Iterator[np.ndarray]:
        """Stream scores for a large dataset through pipeline ``name``.

        For a registered :class:`~repro.streaming.StreamingDetector`
        this is the online route of :meth:`stream` reduced to its score
        arrays; curves consumed during the detector's warm-up have no
        score yet and come back as ``NaN`` so the concatenated output
        still aligns one-to-one with the input curves.  Both routes run
        on the plan executor's single chunked path.
        """
        pipeline = self._pipeline(name)
        if isinstance(pipeline, (StreamingDetector, ShardedStreamingDetector)):
            def online_scores(chunk) -> np.ndarray:
                result = pipeline.process(chunk)
                if result.scores is None:
                    return np.full(chunk.n_samples, np.nan)
                return result.scores

            return run_chunked(
                online_scores, data, chunk_size=chunk_size,
                observe=self._count_traffic, telemetry=self.telemetry,
            )
        return run_chunked(
            pipeline.score_samples, data, chunk_size=chunk_size,
            observe=self._count_traffic, telemetry=self.telemetry,
        )

    # ------------------------------------------------------------------ stats
    def stats(self) -> dict:
        """Service counters plus the shared cache's hit/build counters.

        A *view over the telemetry registry*: every counter here is read
        from the same instrument the ``/metrics`` surface exports, so
        the two can never disagree.  ``pending_curves`` counts curves
        still queued; ``inflight_curves`` counts curves swapped out by a
        flush that has not resolved yet — their sum is the service's
        outstanding work, which the HTTP front door compares against its
        high-water mark to decide load shedding.
        """
        with self._lock:
            return {
                "pipelines": len(self._pipelines),
                "served_curves": self._c_served_curves.value,
                "served_requests": self._c_served_requests.value,
                "failed_requests": self._c_failed_requests.value,
                "flushes": self._c_flushes.value,
                "pending_requests": len(self._queue),
                "pending_curves": self._pending_curves,
                "inflight_curves": self._inflight_curves,
                "cache": self.context.cache.stats.as_dict(),
            }

    def outstanding_curves(self) -> int:
        """Curves accepted but not yet resolved (queued + in-flight)."""
        with self._lock:
            return self._pending_curves + self._inflight_curves

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScoringService(pipelines={self.names()}, "
            f"served_curves={self.served_curves})"
        )
