"""Serving layer: persist fitted pipelines, score traffic at scale.

The experiment stack fits a :class:`~repro.core.GeometricOutlierPipeline`
per protocol cell; production traffic inverts that shape — fit *once*,
then score arbitrary incoming curve batches fast, indefinitely, in a
process that never saw the training data.  This package provides the
pieces of that inference path:

* :mod:`repro.serving.persist` — versioned save/load of fitted
  pipelines as a NumPy ``.npz`` array bundle plus a JSON manifest
  (no pickle, no code objects; ``mmap=True`` loads array bundles
  zero-copy for multi-process serving);
* :mod:`repro.serving.service` — :class:`ScoringService`, a registry of
  named loaded pipelines with a thread-safe micro-batching queue that
  amortizes design-matrix and factorization work through the shared
  :class:`~repro.engine.FactorizationCache`;
* :mod:`repro.serving.server` / :mod:`repro.serving.app` — the asyncio
  HTTP front door (``repro serve``): ``POST /score`` / ``POST /submit``
  routed by pipeline name or spec hash into the micro-batch queue, a
  background max-pending-or-deadline flush task, bounded-queue
  backpressure with 429 load-shedding, and ``SO_REUSEPORT``-style
  multi-worker dispatch over one listening socket;
* :func:`~repro.serving.service.score_stream` — chunked scoring of large
  datasets in bounded memory (also exposed as ``repro serve-score``).
"""

from repro.serving.persist import (
    ARRAYS_NAME,
    FORMAT_VERSION,
    MANIFEST_NAME,
    SUPPORTED_VERSIONS,
    load_pipeline,
    read_spec,
    save_pipeline,
)
from repro.serving.service import (
    DepthScorer,
    ScoreTicket,
    ScoringService,
    iter_curve_chunks,
    score_stream,
)

__all__ = [
    "ARRAYS_NAME",
    "DepthScorer",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "SUPPORTED_VERSIONS",
    "ScoreTicket",
    "ScoringServer",
    "ScoringService",
    "ServingApp",
    "iter_curve_chunks",
    "load_pipeline",
    "load_service",
    "read_spec",
    "save_pipeline",
    "score_stream",
    "serve",
]


def __getattr__(name):
    # The HTTP front door imports lazily: `import repro.serving` stays
    # cheap for batch users who never open a socket.
    if name in ("ScoringServer", "serve", "load_service"):
        from repro.serving import server

        return getattr(server, name)
    if name == "ServingApp":
        from repro.serving.app import ServingApp

        return ServingApp
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
