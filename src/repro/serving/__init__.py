"""Serving layer: persist fitted pipelines, score traffic at scale.

The experiment stack fits a :class:`~repro.core.GeometricOutlierPipeline`
per protocol cell; production traffic inverts that shape — fit *once*,
then score arbitrary incoming curve batches fast, indefinitely, in a
process that never saw the training data.  This package provides the
three pieces of that inference path:

* :mod:`repro.serving.persist` — versioned save/load of fitted
  pipelines as a NumPy ``.npz`` array bundle plus a JSON manifest
  (no pickle, no code objects);
* :mod:`repro.serving.service` — :class:`ScoringService`, a registry of
  named loaded pipelines with a micro-batching queue that amortizes
  design-matrix and factorization work through the shared
  :class:`~repro.engine.FactorizationCache`;
* :func:`~repro.serving.service.score_stream` — chunked scoring of large
  datasets in bounded memory (also exposed as ``repro serve-score``).
"""

from repro.serving.persist import (
    ARRAYS_NAME,
    FORMAT_VERSION,
    MANIFEST_NAME,
    SUPPORTED_VERSIONS,
    load_pipeline,
    read_spec,
    save_pipeline,
)
from repro.serving.service import (
    DepthScorer,
    ScoreTicket,
    ScoringService,
    iter_curve_chunks,
    score_stream,
)

__all__ = [
    "ARRAYS_NAME",
    "DepthScorer",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "SUPPORTED_VERSIONS",
    "ScoreTicket",
    "ScoringService",
    "iter_curve_chunks",
    "load_pipeline",
    "read_spec",
    "save_pipeline",
    "score_stream",
]
