"""Typed declarative specs for every scoring configuration.

A *spec* is a frozen dataclass describing **what** to score with —
which smoother, mapping, detector, Figure-3 method or streaming setup —
with no reference to **how** it will run (that is the
:class:`WorkloadSpec`) and no live objects inside.  Specs are pure
data: they validate on construction with actionable errors
(:class:`~repro.exceptions.ConfigurationError` naming the unknown key
*and* the valid alternatives), round-trip losslessly through JSON, and
are lowered into executable objects by :mod:`repro.plan.compile`.

The flow mirrors a compiler front end::

    JSON / kwargs --parse+validate--> Spec --compile--> ScoringPlan --execute

Every entry point of the library (``make_method``, the serving
manifests, the streaming CLI, the experiment harness) parses into this
one spec vocabulary, so a new backend, dtype or workload shape lands
here once instead of once per entry point.

JSON envelope
-------------
Top-level documents carry a ``"spec"`` discriminator tag::

    {"spec": "pipeline", "detector": {"name": "iforest", "params": {...}},
     "mapping": {"type": "CurvatureMapping"}, "smoother": {"n_basis": 15}}

``spec_from_dict`` / ``spec_from_json`` / ``load_spec`` dispatch on the
tag via :data:`SPEC_TYPES`; each spec's ``to_dict`` emits it.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.detectors import DETECTOR_REGISTRY
from repro.exceptions import ConfigurationError
from repro.geometry.mappings import MAPPING_REGISTRY

__all__ = [
    "DEFAULT_METHOD_SPECS",
    "DetectorSpec",
    "MappingSpec",
    "MethodSpec",
    "METHOD_KINDS",
    "PipelineSpec",
    "SmootherSpec",
    "SPEC_TYPES",
    "StreamSpec",
    "WorkloadSpec",
    "dump_spec",
    "load_spec",
    "spec_from_dict",
    "spec_from_json",
    "spec_hash",
    "spec_to_json",
]


# =====================================================================
# validation helpers
# =====================================================================
def _callable_params(fn) -> set[str]:
    """Named parameters accepted by ``fn`` (excluding self / *args / **kwargs)."""
    sig = inspect.signature(fn)
    return {
        name
        for name, p in sig.parameters.items()
        if name != "self"
        and p.kind not in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
    }


def _check_keys(given, valid: set[str], what: str) -> None:
    """Reject unknown keys with the full valid-key list in the message."""
    unknown = sorted(set(given) - valid)
    if unknown:
        raise ConfigurationError(
            f"unknown parameter(s) for {what}: {unknown}; "
            f"valid: {sorted(valid)}"
        )


def _check_type(value, types, what: str):
    if not isinstance(value, types):
        names = (
            "/".join(t.__name__ for t in types)
            if isinstance(types, tuple)
            else types.__name__
        )
        raise ConfigurationError(
            f"{what} must be {names}, got {type(value).__name__} ({value!r})"
        )
    return value


def _check_choice(value, choices: Sequence, what: str):
    if value not in choices:
        raise ConfigurationError(
            f"{what} must be one of {sorted(str(c) for c in choices)}, got {value!r}"
        )
    return value


def _as_params(value, what: str) -> dict:
    if value is None:
        return {}
    if not isinstance(value, Mapping):
        raise ConfigurationError(
            f"{what} params must be a mapping of keyword arguments, "
            f"got {type(value).__name__}"
        )
    params = dict(value)
    for key in params:
        if not isinstance(key, str):
            raise ConfigurationError(
                f"{what} params keys must be strings, got {key!r}"
            )
    return params


def _jsonable(value):
    """Lower a spec field value into plain-JSON types (lossy only for objects
    that provide ``to_config`` — mappings — which lower to their config dict)."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {k: _jsonable(v) for k, v in value.items()}
    if hasattr(value, "to_config") and callable(value.to_config):
        return _jsonable(value.to_config())
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigurationError(
        f"value {value!r} of type {type(value).__name__} is not JSON-serializable; "
        "specs may only hold scalars, lists, dicts and mapping configs"
    )


def _doc_keys(doc: Mapping, valid: set[str], what: str) -> None:
    _check_keys([k for k in doc if k != "spec"], valid, what)


# =====================================================================
# component specs
# =====================================================================
@dataclass(frozen=True)
class SmootherSpec:
    """Declarative smoothing stage: penalized B-spline reconstruction.

    ``n_basis`` follows the pipeline convention: an ``int`` fixes the
    basis size, a sequence gives the LOO-CV candidate sweep, ``None``
    uses the default candidate sweep.
    """

    n_basis: int | tuple | None = None
    smoothing: float = 1e-4
    penalty_order: int = 2
    spline_order: int = 4

    def __post_init__(self):
        _check_type(self.spline_order, int, "smoother spline_order")
        if self.n_basis is not None:
            # Mirror the pipeline's constructor bound (a spline of order
            # k needs at least k basis functions) so a bad size fails
            # here, at spec construction, not inside build().
            if isinstance(self.n_basis, (int, np.integer)) and not isinstance(self.n_basis, bool):
                object.__setattr__(self, "n_basis", int(self.n_basis))
                if self.n_basis < self.spline_order:
                    raise ConfigurationError(
                        f"smoother n_basis must be >= spline_order="
                        f"{self.spline_order}, got {self.n_basis}"
                    )
            elif isinstance(self.n_basis, (list, tuple)):
                candidates = tuple(
                    int(_check_type(v, (int, np.integer), "smoother n_basis candidate"))
                    for v in self.n_basis
                )
                if not candidates:
                    raise ConfigurationError(
                        "smoother n_basis candidate list must not be empty"
                    )
                bad = [c for c in candidates if c < self.spline_order]
                if bad:
                    raise ConfigurationError(
                        f"smoother n_basis candidates {bad} are below "
                        f"spline_order={self.spline_order}"
                    )
                object.__setattr__(self, "n_basis", candidates)
            else:
                raise ConfigurationError(
                    "smoother n_basis must be an int, a list of candidate ints "
                    f"or null, got {type(self.n_basis).__name__}"
                )
        smoothing = _check_type(self.smoothing, (int, float), "smoother smoothing")
        if smoothing < 0:
            raise ConfigurationError(f"smoother smoothing must be >= 0, got {smoothing}")
        object.__setattr__(self, "smoothing", float(smoothing))
        _check_type(self.penalty_order, int, "smoother penalty_order")
        if self.penalty_order < 0:
            raise ConfigurationError(
                f"smoother penalty_order must be >= 0, got {self.penalty_order}"
            )
        if self.spline_order < 2:
            raise ConfigurationError(
                f"smoother spline_order must be >= 2, got {self.spline_order}"
            )

    def to_dict(self) -> dict:
        return {
            "n_basis": _jsonable(self.n_basis),
            "smoothing": self.smoothing,
            "penalty_order": self.penalty_order,
            "spline_order": self.spline_order,
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "SmootherSpec":
        _check_type(doc, Mapping, "smoother spec")
        _doc_keys(doc, {f.name for f in fields(cls)}, "smoother spec")
        return cls(**{k: v for k, v in doc.items() if k != "spec"})


@dataclass(frozen=True)
class MappingSpec:
    """Declarative geometric aggregation (one mapping, or a composite).

    ``type`` is a :data:`~repro.geometry.mappings.MAPPING_REGISTRY`
    class name (``"CurvatureMapping"``) or its short alias
    (``"curvature"``); ``"CompositeMapping"`` / ``"composite"`` takes
    the sub-specs in ``mappings`` instead of ``params``.
    """

    type: str = "CurvatureMapping"
    params: dict = field(default_factory=dict)
    mappings: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "type", self._canonical_type(self.type))
        object.__setattr__(self, "params", _as_params(self.params, "mapping"))
        object.__setattr__(self, "mappings", tuple(self.mappings or ()))
        if self.type == "CompositeMapping":
            if not self.mappings:
                raise ConfigurationError(
                    "CompositeMapping spec needs a non-empty 'mappings' list"
                )
            if self.params:
                raise ConfigurationError(
                    "CompositeMapping takes sub-specs in 'mappings', not 'params'"
                )
            for sub in self.mappings:
                _check_type(sub, MappingSpec, "composite sub-mapping")
                if sub.type == "CompositeMapping":
                    raise ConfigurationError("composite mappings do not nest")
            return
        if self.mappings:
            raise ConfigurationError(
                f"'mappings' is only valid for CompositeMapping, not {self.type}"
            )
        _check_keys(
            self.params,
            _callable_params(MAPPING_REGISTRY[self.type].__init__),
            f"mapping {self.type!r}",
        )

    @staticmethod
    def _canonical_type(name) -> str:
        _check_type(name, str, "mapping type")
        if name in MAPPING_REGISTRY or name == "CompositeMapping":
            return name
        low = name.strip().lower()
        if low in ("composite", "compositemapping"):
            return "CompositeMapping"
        for cls_name in MAPPING_REGISTRY:
            if low in (cls_name.lower(), cls_name.removesuffix("Mapping").lower()):
                return cls_name
        raise ConfigurationError(
            f"unknown mapping type {name!r}; "
            f"known: {sorted(MAPPING_REGISTRY) + ['CompositeMapping']}"
        )

    def to_config(self) -> dict:
        """The :meth:`MappingFunction.to_config` wire format (persistence)."""
        if self.type == "CompositeMapping":
            return {
                "type": "CompositeMapping",
                "mappings": [sub.to_config() for sub in self.mappings],
            }
        return {"type": self.type, "params": _jsonable(self.params)}

    @classmethod
    def from_config(cls, config: Mapping) -> "MappingSpec":
        """Inverse of :meth:`to_config` (also reads v1 manifest configs)."""
        _check_type(config, Mapping, "mapping config")
        if "type" not in config:
            raise ConfigurationError(
                f"mapping config needs a 'type' key, got keys {sorted(config)}"
            )
        if config["type"] == "CompositeMapping":
            return cls(
                type="CompositeMapping",
                mappings=tuple(
                    cls.from_config(sub) for sub in config.get("mappings", [])
                ),
            )
        return cls(type=config["type"], params=config.get("params", {}))

    def to_dict(self) -> dict:
        doc: dict = {"type": self.type}
        if self.type == "CompositeMapping":
            doc["mappings"] = [sub.to_dict() for sub in self.mappings]
        elif self.params:
            doc["params"] = _jsonable(self.params)
        return doc

    @classmethod
    def from_dict(cls, doc) -> "MappingSpec":
        if isinstance(doc, str):  # shorthand: "curvature"
            return cls(type=doc)
        _check_type(doc, Mapping, "mapping spec")
        _doc_keys(doc, {"type", "params", "mappings"}, "mapping spec")
        subs = tuple(cls.from_dict(sub) for sub in doc.get("mappings", ()))
        return cls(
            type=doc.get("type", "CurvatureMapping"),
            params=doc.get("params", {}),
            mappings=subs,
        )


@dataclass(frozen=True)
class DetectorSpec:
    """Declarative multivariate detector: registry name + constructor kwargs."""

    name: str = "iforest"
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "name", self._canonical_name(self.name))
        object.__setattr__(self, "params", _as_params(self.params, "detector"))
        _check_keys(
            self.params,
            _callable_params(DETECTOR_REGISTRY[self.name].__init__),
            f"detector {self.name!r}",
        )

    @staticmethod
    def _canonical_name(name) -> str:
        _check_type(name, str, "detector name")
        if name in DETECTOR_REGISTRY:
            return name
        by_class = {cls.__name__: key for key, cls in DETECTOR_REGISTRY.items()}
        if name in by_class:
            return by_class[name]
        low = name.strip().lower()
        if low in DETECTOR_REGISTRY:
            return low
        raise ConfigurationError(
            f"unknown detector {name!r}; known: {sorted(DETECTOR_REGISTRY)}"
        )

    def to_dict(self) -> dict:
        doc: dict = {"name": self.name}
        if self.params:
            doc["params"] = _jsonable(self.params)
        return doc

    @classmethod
    def from_dict(cls, doc) -> "DetectorSpec":
        if isinstance(doc, str):  # shorthand: "iforest"
            return cls(name=doc)
        _check_type(doc, Mapping, "detector spec")
        _doc_keys(doc, {"name", "params"}, "detector spec")
        return cls(name=doc.get("name", "iforest"), params=doc.get("params", {}))


# =====================================================================
# top-level specs
# =====================================================================
def _mapping_required_derivatives(spec: MappingSpec) -> int:
    """Derivative order the mapping will consume, from the spec alone."""
    if spec.type == "CompositeMapping":
        return max(_mapping_required_derivatives(sub) for sub in spec.mappings)
    if spec.type == "GeneralizedCurvatureMapping":
        # Instance-dependent: chi_j needs j + 1 derivatives.
        return int(spec.params.get("order", 1)) + 1
    return int(MAPPING_REGISTRY[spec.type].required_derivatives)


@dataclass(frozen=True)
class PipelineSpec:
    """The paper's smooth → map → detect pipeline, declaratively."""

    detector: DetectorSpec = field(default_factory=DetectorSpec)
    mapping: MappingSpec = field(default_factory=MappingSpec)
    smoother: SmootherSpec = field(default_factory=SmootherSpec)
    eval_points: int | None = None

    def __post_init__(self):
        _check_type(self.detector, DetectorSpec, "pipeline detector")
        _check_type(self.mapping, MappingSpec, "pipeline mapping")
        _check_type(self.smoother, SmootherSpec, "pipeline smoother")
        # Cross-field: the spline must support the derivatives the
        # mapping consumes (the pipeline constructor's invariant,
        # surfaced at spec construction with the fix spelled out).
        required = _mapping_required_derivatives(self.mapping)
        if self.smoother.spline_order - 1 < required:
            raise ConfigurationError(
                f"smoother spline_order={self.smoother.spline_order} supports "
                f"derivatives up to {self.smoother.spline_order - 1} but "
                f"mapping {self.mapping.type!r} needs {required}; set "
                f"spline_order >= {required + 1}"
            )
        if self.eval_points is not None:
            _check_type(self.eval_points, int, "pipeline eval_points")
            if self.eval_points < 4:
                raise ConfigurationError(
                    f"pipeline eval_points must be >= 4, got {self.eval_points}"
                )

    def to_dict(self) -> dict:
        return {
            "spec": "pipeline",
            "detector": self.detector.to_dict(),
            "mapping": self.mapping.to_dict(),
            "smoother": self.smoother.to_dict(),
            "eval_points": self.eval_points,
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "PipelineSpec":
        _check_type(doc, Mapping, "pipeline spec")
        _doc_keys(doc, {"detector", "mapping", "smoother", "eval_points"}, "pipeline spec")
        return cls(
            detector=DetectorSpec.from_dict(doc.get("detector", "iforest")),
            mapping=MappingSpec.from_dict(doc.get("mapping", {})),
            smoother=SmootherSpec.from_dict(doc.get("smoother", {})),
            eval_points=doc.get("eval_points"),
        )


#: Canonical Figure-3 method kinds and the label aliases accepted from
#: the historical ``make_method`` string path (case-insensitive).
METHOD_KINDS = ("dirout", "funta", "iforest", "ocsvm")

_METHOD_ALIASES = {
    "dir.out": "dirout",
    "dirout": "dirout",
    "funta": "funta",
    "ifor": "iforest",
    "ifor(curvmap)": "iforest",
    "iforest": "iforest",
    "ocsvm": "ocsvm",
    "ocsvm(curvmap)": "ocsvm",
}


def _method_valid_keys(kind: str) -> set[str]:
    # Lazy import: repro.core.methods imports back into the evaluation
    # stack; signatures are only needed at validation time.
    from repro.core import methods as core_methods

    if kind == "funta":
        return _callable_params(core_methods.FuntaMethod.__init__)
    if kind == "dirout":
        return _callable_params(core_methods.DirOutMethod.__init__)
    wrapper = _callable_params(core_methods.MappedDetectorMethod.__init__)
    wrapper.discard("detector_name")
    return wrapper | _callable_params(DETECTOR_REGISTRY[kind].__init__)


@dataclass(frozen=True)
class MethodSpec:
    """One Figure-3 experiment method (pipeline variant or depth baseline).

    ``kind`` accepts the canonical names (:data:`METHOD_KINDS`) and the
    Figure-3 label aliases the old ``make_method`` string path took
    (``"Dir.out"``, ``"iFor(Curvmap)"``, ...).  ``params`` is validated
    against the method constructor *and* — for the detector-backed
    kinds — the detector constructor, so a typo'd keyword fails here
    with the valid-key list instead of deep inside ``prepare``.
    """

    kind: str = "iforest"
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        _check_type(self.kind, str, "method kind")
        canonical = _METHOD_ALIASES.get(self.kind.strip().lower())
        if canonical is None:
            raise ConfigurationError(
                f"unknown method spec {self.kind!r}; known kinds: "
                f"{list(METHOD_KINDS)} (plus Figure-3 labels "
                "'Dir.out', 'FUNTA', 'iFor(Curvmap)', 'OCSVM(Curvmap)')"
            )
        object.__setattr__(self, "kind", canonical)
        object.__setattr__(self, "params", _as_params(self.params, "method"))
        _check_keys(self.params, _method_valid_keys(canonical), f"method {canonical!r}")

    def to_dict(self) -> dict:
        doc: dict = {"spec": "method", "kind": self.kind}
        if self.params:
            doc["params"] = _jsonable(self.params)
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping) -> "MethodSpec":
        _check_type(doc, Mapping, "method spec")
        _doc_keys(doc, {"kind", "params"}, "method spec")
        return cls(kind=doc.get("kind", "iforest"), params=doc.get("params", {}))


#: The four methods of the paper's Figure 3, as data.  The OCSVM kernel
#: width is fixed at ``gamma = 0.05`` on the standardized mapped
#: features (see the gamma ablation bench).
DEFAULT_METHOD_SPECS = (
    MethodSpec("dirout"),
    MethodSpec("funta"),
    MethodSpec("iforest", params={"n_estimators": 200}),
    MethodSpec("ocsvm", params={"gamma": 0.05}),
)


@dataclass(frozen=True)
class StreamSpec:
    """Online detection setup: reference window + scorer + calibration.

    Mirrors the ``repro stream-score`` CLI surface.  ``on_drift=None``
    resolves by policy: reservoir windows re-reference on drift (they
    dilute regime changes indefinitely otherwise), sliding windows
    adapt on their own.
    """

    kind: str = "funta"
    window: int = 128
    policy: str = "sliding"
    min_reference: int = 16
    contamination: float = 0.05
    threshold_mode: str = "window"
    drift_baseline: int = 128
    drift_recent: int = 64
    alpha: float = 0.01
    seed: int = 7
    update_policy: str = "all"
    on_drift: str | None = None
    incremental: bool = True
    block_bytes: int | None = None
    shards: int = 1
    shard_backend: str = "thread"
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        from repro.streaming.online import STREAM_KINDS, StreamingDetector

        _check_type(self.kind, str, "stream kind")
        if self.kind == "pipeline":
            raise ConfigurationError(
                "stream kind 'pipeline' needs an in-memory fitted pipeline; "
                "construct StreamingDetector(pipeline=...) directly (specs "
                "cover the self-contained kinds "
                f"{sorted(set(STREAM_KINDS) - {'pipeline'})})"
            )
        _check_choice(self.kind, tuple(k for k in STREAM_KINDS if k != "pipeline"),
                      "stream kind")
        _check_type(self.window, int, "stream window")
        if self.window < 2:
            raise ConfigurationError(f"stream window must be >= 2, got {self.window}")
        _check_choice(self.policy, ("sliding", "reservoir"), "stream policy")
        _check_type(self.min_reference, int, "stream min_reference")
        # StreamingDetector's floor: reference-based scoring needs at
        # least two curves in the window.
        if not 2 <= self.min_reference <= self.window:
            raise ConfigurationError(
                f"stream min_reference must be in [2, window={self.window}], "
                f"got {self.min_reference}"
            )
        contamination = _check_type(self.contamination, (int, float), "stream contamination")
        if not 0.0 < contamination < 1.0:
            raise ConfigurationError(
                f"stream contamination must be in (0, 1), got {contamination}"
            )
        object.__setattr__(self, "contamination", float(contamination))
        _check_choice(self.threshold_mode, ("window", "p2", "sketch"), "stream threshold_mode")
        _check_type(self.drift_baseline, int, "stream drift_baseline")
        _check_type(self.drift_recent, int, "stream drift_recent")
        # DepthRankDrift's floors: a KS test on fewer than 8 scores per
        # sample is meaningless and the monitor rejects it at build time.
        if self.drift_baseline < 8:
            raise ConfigurationError(
                f"stream drift_baseline must be >= 8, got {self.drift_baseline}"
            )
        if self.drift_recent < 8:
            raise ConfigurationError(
                f"stream drift_recent must be >= 8, got {self.drift_recent}"
            )
        alpha = _check_type(self.alpha, (int, float), "stream alpha")
        if not 0.0 < alpha < 1.0:
            raise ConfigurationError(f"stream alpha must be in (0, 1), got {alpha}")
        object.__setattr__(self, "alpha", float(alpha))
        _check_type(self.seed, int, "stream seed")
        _check_choice(self.update_policy, ("all", "inliers", "none"), "stream update_policy")
        if self.on_drift is not None:
            _check_choice(self.on_drift, ("adapt", "rereference"), "stream on_drift")
        _check_type(self.incremental, bool, "stream incremental")
        if self.block_bytes is not None:
            _check_type(self.block_bytes, int, "stream block_bytes")
        _check_type(self.shards, int, "stream shards")
        if self.shards < 1:
            raise ConfigurationError(f"stream shards must be >= 1, got {self.shards}")
        _check_choice(self.shard_backend, ("serial", "thread", "process"),
                      "stream shard_backend")
        if self.shards > 1:
            if self.window % self.shards:
                raise ConfigurationError(
                    f"stream window={self.window} must divide evenly across "
                    f"shards={self.shards}"
                )
            if self.window // self.shards < 2:
                raise ConfigurationError(
                    f"stream window={self.window} leaves fewer than 2 slots "
                    f"per shard across shards={self.shards}"
                )
            if self.threshold_mode == "p2":
                raise ConfigurationError(
                    "threshold_mode='p2' cannot shard: P² markers are not "
                    "mergeable — use 'window' (exact) or 'sketch' (mergeable "
                    "quantile sketch)"
                )
            if self.drift_baseline % self.shards or self.drift_recent % self.shards:
                raise ConfigurationError(
                    f"drift_baseline={self.drift_baseline} and drift_recent="
                    f"{self.drift_recent} must divide evenly across "
                    f"shards={self.shards}"
                )
            if (self.drift_baseline // self.shards < 8
                    or self.drift_recent // self.shards < 8):
                raise ConfigurationError(
                    "per-shard KS samples need >= 8 scores: raise "
                    f"drift_baseline={self.drift_baseline}/drift_recent="
                    f"{self.drift_recent} or lower shards={self.shards}"
                )
        object.__setattr__(self, "params", _as_params(self.params, "stream"))
        _check_keys(
            self.params,
            set(StreamingDetector._ALLOWED_OPTIONS[self.kind]),
            f"stream kind {self.kind!r}",
        )

    @property
    def effective_on_drift(self) -> str:
        if self.on_drift is not None:
            return self.on_drift
        return "rereference" if self.policy == "reservoir" else "adapt"

    def to_dict(self) -> dict:
        doc: dict = {"spec": "stream"}
        for f in fields(self):
            doc[f.name] = _jsonable(getattr(self, f.name))
        if not doc["params"]:
            del doc["params"]
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping) -> "StreamSpec":
        _check_type(doc, Mapping, "stream spec")
        _doc_keys(doc, {f.name for f in fields(cls)}, "stream spec")
        return cls(**{k: v for k, v in doc.items() if k != "spec"})


@dataclass(frozen=True)
class WorkloadSpec:
    """How a spec will be executed: traffic shape + resource knobs.

    ``mode`` is the traffic shape (``"batch"`` one-shot matrices,
    ``"microbatch"`` the submit/flush queue, ``"stream"`` bounded-memory
    chunking); ``chunk_size``/``max_pending`` bound those paths;
    ``n_jobs`` sizes the :class:`~repro.engine.ExecutionContext` pool;
    ``block_bytes`` caps depth-kernel scratch; ``dtype`` pins the
    numeric backend — ``float64`` (the reference) or ``float32`` (the
    kernel fast path: half the slab memory traffic, scores within a
    pinned ULP tolerance of the float64 oracle and rank-order preserved
    on the paper's workloads; see ``tests/test_float32_path.py``).
    """

    mode: str = "batch"
    n_jobs: int = 1
    chunk_size: int = 256
    block_bytes: int | None = None
    dtype: str = "float64"
    max_pending: int = 1024

    def __post_init__(self):
        _check_choice(self.mode, ("batch", "microbatch", "stream"), "workload mode")
        _check_type(self.n_jobs, int, "workload n_jobs")
        if self.n_jobs != -1 and self.n_jobs < 1:
            raise ConfigurationError(
                f"workload n_jobs must be a positive int or -1, got {self.n_jobs}"
            )
        _check_type(self.chunk_size, int, "workload chunk_size")
        if self.chunk_size < 1:
            raise ConfigurationError(
                f"workload chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.block_bytes is not None:
            _check_type(self.block_bytes, int, "workload block_bytes")
            if self.block_bytes < 1:
                raise ConfigurationError(
                    f"workload block_bytes must be >= 1, got {self.block_bytes}"
                )
        _check_choice(self.dtype, ("float64", "float32"), "workload dtype")
        _check_type(self.max_pending, int, "workload max_pending")
        if self.max_pending < 1:
            raise ConfigurationError(
                f"workload max_pending must be >= 1, got {self.max_pending}"
            )

    def to_dict(self) -> dict:
        return {"spec": "workload", **{f.name: getattr(self, f.name) for f in fields(self)}}

    @classmethod
    def from_dict(cls, doc: Mapping) -> "WorkloadSpec":
        _check_type(doc, Mapping, "workload spec")
        _doc_keys(doc, {f.name for f in fields(cls)}, "workload spec")
        return cls(**{k: v for k, v in doc.items() if k != "spec"})


# =====================================================================
# JSON envelope
# =====================================================================
#: Top-level spec classes addressable from JSON, keyed by the ``"spec"`` tag.
SPEC_TYPES: dict[str, type] = {
    "pipeline": PipelineSpec,
    "method": MethodSpec,
    "stream": StreamSpec,
    "workload": WorkloadSpec,
}


def spec_from_dict(doc: Mapping):
    """Parse a tagged spec document (see the module docstring)."""
    _check_type(doc, Mapping, "spec document")
    tag = doc.get("spec")
    if tag is None:
        raise ConfigurationError(
            f"spec document needs a 'spec' tag naming its type; "
            f"known tags: {sorted(SPEC_TYPES)}"
        )
    cls = SPEC_TYPES.get(tag)
    if cls is None:
        raise ConfigurationError(
            f"unknown spec tag {tag!r}; known tags: {sorted(SPEC_TYPES)}"
        )
    return cls.from_dict(doc)


def spec_from_json(text: str):
    """Parse a spec from its JSON text."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"spec is not valid JSON: {exc}") from exc
    return spec_from_dict(doc)


def spec_to_json(spec, indent: int | None = 2) -> str:
    """Serialize any spec to JSON text (inverse of :func:`spec_from_json`)."""
    if not isinstance(spec, tuple(SPEC_TYPES.values())):
        raise ConfigurationError(
            f"cannot serialize {type(spec).__name__}; top-level specs are "
            f"{sorted(cls.__name__ for cls in SPEC_TYPES.values())}"
        )
    return json.dumps(spec.to_dict(), indent=indent, sort_keys=True)


def spec_hash(spec) -> str:
    """Content hash of a spec: sha256 over its canonical JSON, hex digest.

    Canonical means sorted keys and compact separators, so the hash is
    stable across processes, Python versions and dict insertion orders
    — two specs hash equal iff their JSON round-trips are equal.  The
    serving tier uses it as the routing key for deployed pipelines: a
    request may address a model by the hash of its declarative spec
    instead of a deployment-local name, and every worker process
    derives the same key from the same manifest with no coordination.
    """
    if not isinstance(spec, tuple(SPEC_TYPES.values())):
        raise ConfigurationError(
            f"cannot hash {type(spec).__name__}; top-level specs are "
            f"{sorted(cls.__name__ for cls in SPEC_TYPES.values())}"
        )
    canonical = json.dumps(spec.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def load_spec(path):
    """Read and validate a spec JSON file."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigurationError(f"cannot read spec file {path}: {exc}") from exc
    return spec_from_json(text)


def dump_spec(spec, path) -> Path:
    """Write a spec to ``path`` as JSON; returns the path."""
    path = Path(path)
    path.write_text(spec_to_json(spec) + "\n", encoding="utf-8")
    return path
