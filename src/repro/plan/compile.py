"""Lower validated specs into executable scoring plans.

``compile_plan(spec, workload, context)`` is the single construction
path of the library: every entry point — ``make_method``, the
``GeometricOutlierPipeline`` spec constructors, the serving manifests,
the streaming CLI, the experiment harness — funnels through it, so
resolving a spec into live smoother/mapping/detector objects happens in
exactly one place.

A :class:`ScoringPlan` bundles the spec, the
:class:`~repro.plan.specs.WorkloadSpec` describing how it will run, and
the resolved :class:`~repro.engine.ExecutionContext`; its subclasses
expose the execution surface for each spec family:

===================  ================================================
spec                 plan / executable
===================  ================================================
:class:`PipelineSpec` :class:`PipelinePlan` → fitted
                      :class:`~repro.core.pipeline.GeometricOutlierPipeline`
:class:`MethodSpec`   :class:`MethodPlan` → a Figure-3
                      :class:`~repro.core.methods.Method`
:class:`StreamSpec`   :class:`StreamPlan` → a primed
                      :class:`~repro.streaming.StreamingDetector`
===================  ================================================
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.detectors import DETECTOR_REGISTRY, make_detector
from repro.engine import ExecutionContext
from repro.exceptions import ConfigurationError, NotFittedError
from repro.geometry.mappings import mapping_from_config
from repro.plan.executor import run_chunked
from repro.plan.specs import (
    DetectorSpec,
    MappingSpec,
    MethodSpec,
    PipelineSpec,
    SmootherSpec,
    StreamSpec,
    WorkloadSpec,
    spec_from_dict,
)

__all__ = [
    "MethodPlan",
    "PipelinePlan",
    "ScoringPlan",
    "StreamPlan",
    "compile_plan",
    "pipeline_to_spec",
    "plan_for_pipeline",
    "restore_pipeline",
]

_DETECTOR_NAME_BY_CLASS = {cls.__name__: name for name, cls in DETECTOR_REGISTRY.items()}


# =====================================================================
# plans
# =====================================================================
class ScoringPlan:
    """A compiled spec: resolved context + workload, ready to execute."""

    kind: str = "plan"

    def __init__(self, spec, workload: WorkloadSpec, context: ExecutionContext):
        self.spec = spec
        self.workload = workload
        self.context = context

    def build(self):
        """Construct a fresh executable object from the spec."""
        raise NotImplementedError

    def describe(self) -> dict:
        """One-line-able summary used by ``repro plan validate``."""
        return {"kind": self.kind, "workload": self.workload.mode}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.spec!r}, mode={self.workload.mode!r})"


class PipelinePlan(ScoringPlan):
    """Executable plan for the smooth → map → detect pipeline."""

    kind = "pipeline"

    def __init__(self, spec: PipelineSpec, workload, context):
        super().__init__(spec, workload, context)
        self._pipeline = None

    def build(self):
        """A fresh (unfitted) pipeline resolved from the spec."""
        from repro.core.pipeline import GeometricOutlierPipeline

        smoother = self.spec.smoother
        return GeometricOutlierPipeline(
            detector=make_detector(self.spec.detector.name, **self.spec.detector.params),
            mapping=mapping_from_config(self.spec.mapping.to_config()),
            n_basis=smoother.n_basis,
            smoothing=smoother.smoothing,
            penalty_order=smoother.penalty_order,
            spline_order=smoother.spline_order,
            eval_points=self.spec.eval_points,
            context=self.context,
        )

    # ------------------------------------------------------------------ execution
    @property
    def pipeline(self):
        """The bound executable (set by :meth:`fit` or :meth:`bind`)."""
        if self._pipeline is None:
            raise NotFittedError(
                "plan has no fitted pipeline yet — call fit(train) or bind one"
            )
        return self._pipeline

    def bind(self, pipeline) -> "PipelinePlan":
        """Adopt an already-fitted pipeline as this plan's executable."""
        from repro.core.pipeline import GeometricOutlierPipeline

        if not isinstance(pipeline, GeometricOutlierPipeline) or not pipeline._fitted:
            raise ConfigurationError(
                "bind() needs a fitted GeometricOutlierPipeline"
            )
        self._pipeline = pipeline
        return self

    def fit(self, train):
        """Build from the spec and fit on ``train``; returns the pipeline."""
        self._pipeline = self.build().fit(train)
        return self._pipeline

    def score(self, data):
        """Batch-mode scoring through the bound pipeline."""
        return self.pipeline.score_samples(data)

    def score_chunks(self, data, chunk_size: int | None = None) -> Iterator:
        """Stream-mode scoring: bounded-memory chunks of scores."""
        size = self.workload.chunk_size if chunk_size is None else chunk_size
        return run_chunked(self.pipeline.score_samples, data, chunk_size=size)

    def fit_score(self, train, test):
        """Convenience: fit on ``train``, score ``test``."""
        self.fit(train)
        return self.score(test)

    def describe(self) -> dict:
        return {
            **super().describe(),
            "detector": self.spec.detector.name,
            "mapping": self.spec.mapping.type,
            "n_basis": self.spec.smoother.n_basis,
        }


class MethodPlan(ScoringPlan):
    """Executable plan for one Figure-3 experiment method."""

    kind = "method"

    def __init__(self, spec: MethodSpec, workload, context):
        super().__init__(spec, workload, context)
        self._method = None

    def build(self):
        """Resolve the method object (the old ``make_method`` dispatch)."""
        from repro.core import methods as core_methods

        params = dict(self.spec.params)
        if self.spec.kind in ("funta", "dirout"):
            if self.workload.block_bytes is not None:
                params.setdefault("block_bytes", self.workload.block_bytes)
            if self.workload.dtype != "float64":
                params.setdefault("dtype", self.workload.dtype)
            cls = (
                core_methods.FuntaMethod
                if self.spec.kind == "funta"
                else core_methods.DirOutMethod
            )
            return cls(**params)
        mapping = params.get("mapping")
        if isinstance(mapping, Mapping):
            # JSON-authored specs carry the mapping as a config dict.
            params["mapping"] = mapping_from_config(
                MappingSpec.from_dict(mapping).to_config()
            )
        return core_methods.MappedDetectorMethod(self.spec.kind, **params)

    @property
    def method(self):
        if self._method is None:
            self._method = self.build()
        return self._method

    def score_dataset(self, data, train_idx, test_idx, random_state=None):
        """Prepare + fit_score through the plan's shared context."""
        return self.method.score_dataset(
            data, train_idx, test_idx, random_state=random_state, context=self.context
        )

    def describe(self) -> dict:
        return {**super().describe(), "method": self.spec.kind}


class StreamPlan(ScoringPlan):
    """Executable plan for online detection over an unbounded stream."""

    kind = "stream"

    def __init__(self, spec: StreamSpec, workload, context):
        super().__init__(spec, workload, context)
        self._detector = None

    def build(self):
        """Window + threshold + drift monitor + detector, from the spec.

        ``shards > 1`` compiles to a
        :class:`~repro.streaming.sharded.ShardedStreamingDetector` with
        the federated threshold/drift aggregators; ``shards == 1`` keeps
        the single-window detector.
        """
        from repro.streaming import (
            DepthRankDrift,
            FederatedDrift,
            FederatedThreshold,
            ReservoirWindow,
            ShardedStreamingDetector,
            SlidingWindow,
            StreamingDetector,
            make_threshold,
        )

        spec = self.spec
        block_bytes = spec.block_bytes
        if block_bytes is None:
            block_bytes = self.workload.block_bytes
        if spec.shards > 1:
            threshold = FederatedThreshold(
                spec.contamination,
                spec.shards,
                mode=spec.threshold_mode,
                capacity=max(spec.window, 2 * spec.shards),
            )
            drift = FederatedDrift(
                spec.shards,
                baseline_size=spec.drift_baseline,
                recent_size=spec.drift_recent,
                alpha=spec.alpha,
            )
            return ShardedStreamingDetector(
                spec.kind,
                shards=spec.shards,
                capacity=spec.window,
                window_kind=spec.policy,
                threshold=threshold,
                drift=drift,
                min_reference=spec.min_reference,
                update_policy=spec.update_policy,
                on_drift=spec.effective_on_drift,
                incremental=spec.incremental,
                backend=spec.shard_backend,
                block_bytes=block_bytes,
                context=self.context,
                seed=spec.seed,
                **spec.params,
            )
        if spec.policy == "sliding":
            window = SlidingWindow(spec.window)
        else:
            window = ReservoirWindow(spec.window, random_state=spec.seed)
        threshold = make_threshold(
            spec.contamination, mode=spec.threshold_mode, capacity=max(spec.window, 2)
        )
        drift = DepthRankDrift(
            baseline_size=spec.drift_baseline,
            recent_size=spec.drift_recent,
            alpha=spec.alpha,
        )
        return StreamingDetector(
            spec.kind,
            window,
            threshold=threshold,
            drift=drift,
            min_reference=spec.min_reference,
            update_policy=spec.update_policy,
            on_drift=spec.effective_on_drift,
            incremental=spec.incremental,
            block_bytes=block_bytes,
            context=self.context,
            **spec.params,
        )

    @property
    def detector(self):
        if self._detector is None:
            self._detector = self.build()
        return self._detector

    def process_chunks(self, data, chunk_size: int | None = None) -> Iterator:
        """Feed ``data`` through the detector's full online step, chunked."""
        size = self.workload.chunk_size if chunk_size is None else chunk_size
        return run_chunked(self.detector.process, data, chunk_size=size)

    def describe(self) -> dict:
        return {
            **super().describe(),
            "stream_kind": self.spec.kind,
            "policy": self.spec.policy,
            "window": self.spec.window,
            "shards": self.spec.shards,
        }


_PLAN_BY_SPEC = {
    PipelineSpec: PipelinePlan,
    MethodSpec: MethodPlan,
    StreamSpec: StreamPlan,
}


# =====================================================================
# compilation entry points
# =====================================================================
def compile_plan(
    spec,
    workload: WorkloadSpec | None = None,
    context: ExecutionContext | None = None,
    telemetry=None,
) -> ScoringPlan:
    """Lower ``spec`` (+ optional workload descriptor) into a ScoringPlan.

    ``spec`` may be a spec object or a tagged dict (see
    :func:`~repro.plan.specs.spec_from_dict`).  ``workload`` defaults to
    batch mode for pipeline/method specs and stream mode for stream
    specs.  ``context`` attaches the plan to a shared execution context;
    a private one sized by ``workload.n_jobs`` is created when omitted.
    ``telemetry`` threads a :class:`~repro.telemetry.Telemetry` handle
    through that context, so everything the plan executes — cache,
    kernels, chunked runs, streaming detectors — emits into one
    registry; attaching to a caller-provided context only upgrades it
    (an already-enabled handle is never replaced by this argument).
    """
    if isinstance(spec, Mapping):
        spec = spec_from_dict(spec)
    plan_cls = _PLAN_BY_SPEC.get(type(spec))
    if plan_cls is None:
        raise ConfigurationError(
            f"cannot compile {type(spec).__name__}; compilable specs: "
            f"{sorted(cls.__name__ for cls in _PLAN_BY_SPEC)}"
        )
    if workload is None:
        workload = WorkloadSpec(mode="stream" if isinstance(spec, StreamSpec) else "batch")
    elif not isinstance(workload, WorkloadSpec):
        if isinstance(workload, Mapping):
            workload = WorkloadSpec.from_dict(workload)
        else:
            raise ConfigurationError(
                f"workload must be a WorkloadSpec or dict, got {type(workload).__name__}"
            )
    if context is None:
        context = ExecutionContext(n_jobs=workload.n_jobs, telemetry=telemetry)
    elif not isinstance(context, ExecutionContext):
        raise ConfigurationError(
            f"context must be an ExecutionContext, got {type(context).__name__}"
        )
    elif telemetry is not None and not context.telemetry.enabled:
        context.attach_telemetry(telemetry)
    return plan_cls(spec, workload, context)


def pipeline_to_spec(pipeline) -> PipelineSpec:
    """Derive the declarative spec of a (possibly fitted) pipeline.

    The inverse direction of :meth:`PipelinePlan.build`: used by the
    serving layer to write the v2 manifest's ``spec`` section and by
    ``GeometricOutlierPipeline.to_spec``.
    """
    detector = pipeline.detector
    name = _DETECTOR_NAME_BY_CLASS.get(type(detector).__name__)
    if name is None:
        raise ConfigurationError(
            f"detector {type(detector).__name__} is not in DETECTOR_REGISTRY; "
            f"registered: {sorted(DETECTOR_REGISTRY)}"
        )
    return PipelineSpec(
        detector=DetectorSpec(name, dict(detector._export_config())),
        mapping=MappingSpec.from_config(pipeline.mapping.to_config()),
        smoother=SmootherSpec(
            n_basis=pipeline.n_basis,
            smoothing=pipeline.smoothing,
            penalty_order=pipeline.penalty_order,
            spline_order=pipeline.spline_order,
        ),
        eval_points=pipeline.eval_points,
    )


def restore_pipeline(
    spec: PipelineSpec,
    state: dict,
    context: ExecutionContext | None = None,
):
    """Rebuild a fitted pipeline from its spec + exported fitted state.

    The loading half of the v2 persistence format: the *declarative*
    configuration comes from ``spec`` (validated by the spec layer), the
    *fitted* artifacts (smoothers, evaluation grid, detector state) come
    from ``state``.  Scores are bit-identical to the pipeline that was
    saved.
    """
    from repro.detectors import detector_from_state

    plan = compile_plan(spec, context=context)
    pipeline = plan.build()
    # The spec is the single source of truth for constructor config:
    # v2 manifests do not persist the detector's config inside the
    # fitted state at all, and for v1 (whose spec was derived from that
    # very config) the override is a no-op — so an edited spec section
    # genuinely governs the restored detector.
    detector_state = dict(state["detector"])
    detector_state["config"] = dict(spec.detector.params)
    pipeline.detector = detector_from_state(detector_state)
    pipeline.inject_fitted_state(state)
    plan.bind(pipeline)
    return pipeline


def plan_for_pipeline(
    pipeline,
    workload: WorkloadSpec | None = None,
    context: ExecutionContext | None = None,
) -> PipelinePlan:
    """Wrap an already-fitted pipeline in an executable plan.

    Derives the spec from the pipeline and binds the instance, so
    callers holding a fitted pipeline (e.g. one restored from disk) get
    the same chunked execution surface as spec-compiled plans.
    """
    spec = pipeline_to_spec(pipeline)
    plan = compile_plan(spec, workload=workload, context=context or pipeline.context)
    plan.bind(pipeline)
    return plan
