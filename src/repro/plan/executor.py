"""The single chunked execution path shared by every scoring surface.

Before the plan layer, chunk bookkeeping over curve streams was
re-implemented in three places (``score_stream``,
``ScoringService.stream``, ``ScoringService.score_stream``).  This
module owns it once:

* :func:`iter_curve_chunks` normalizes any stream source — one
  (M)FDataGrid, or a lazy iterable of batches — into bounded-size
  MFDataGrid chunks;
* :func:`run_chunked` applies a per-chunk step function over those
  chunks, threading an optional ``observe`` callback (the hook the
  serving layer uses for its traffic counters) without materializing
  the stream.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.exceptions import ValidationError
from repro.fda.fdata import FDataGrid, MFDataGrid, as_mfd
from repro.telemetry import resolve_telemetry
from repro.utils.validation import check_int

__all__ = ["iter_curve_chunks", "run_chunked"]


def iter_curve_chunks(data, chunk_size: int = 256) -> Iterator[MFDataGrid]:
    """Normalize any stream source into bounded-size MFDataGrid chunks.

    ``data`` may be a single (M)FDataGrid (sliced ``chunk_size`` curves
    at a time) or any iterable/iterator/generator of (M)FDataGrid
    batches — true stream sources are consumed lazily, one batch at a
    time, never materialized.  The shared front door of every chunked
    scoring path (:func:`repro.serving.score_stream`, the service
    streaming routes, ``repro serve-score`` / ``repro stream-score``).
    """
    chunk_size = check_int(chunk_size, "chunk_size", minimum=1)
    if isinstance(data, (FDataGrid, MFDataGrid)):
        mfd = as_mfd(data)
        for start in range(0, mfd.n_samples, chunk_size):
            yield mfd[start : start + chunk_size]
        return
    if isinstance(data, np.ndarray):
        raise ValidationError(
            "raw arrays are ambiguous stream sources; wrap them in an "
            "(M)FDataGrid (values + grid) first"
        )
    if isinstance(data, Iterable):
        for batch in data:
            yield as_mfd(batch)
        return
    raise ValidationError(
        f"data must be (M)FDataGrid or an iterable of batches, got {type(data).__name__}"
    )


def run_chunked(
    step: Callable[[MFDataGrid], object],
    data,
    chunk_size: int = 256,
    observe: Callable[[MFDataGrid, object], None] | None = None,
    context=None,
    telemetry=None,
) -> Iterator:
    """Apply ``step`` to every bounded-size chunk of ``data``, lazily.

    Yields each chunk's result as it is produced, so peak memory stays
    bounded by one chunk regardless of the source size.  ``observe``
    (if given) runs after each step with ``(chunk, result)`` — used by
    :class:`~repro.serving.ScoringService` to fold traffic counters in
    without duplicating the iteration logic.

    ``context`` (an :class:`~repro.engine.ExecutionContext` with
    ``n_jobs > 1``) fans independent chunks out across the context's
    process pool via :meth:`~repro.engine.ExecutionContext.imap`,
    yielding results in input order — only valid when ``step`` is
    stateless across chunks (pure scoring; stateful streaming steps
    must stay serial) and picklable.  Chunks are materialized eagerly
    in that case to hand the pool its work list.

    ``telemetry`` (explicit, else the context's handle) records each
    chunk into the ``plan_chunk_seconds`` latency histogram and the
    chunk/curve counters, and — on the serial path, where the step runs
    in-process — wraps it in a ``chunk`` span, so a caller-opened span
    becomes the parent of one child per chunk (the request's trace
    tree).  The pooled path records timing only: the step executes in
    worker processes, out of reach of this thread's span stack.
    """
    telemetry = resolve_telemetry(context, telemetry)
    if telemetry.enabled:
        chunk_seconds = telemetry.histogram("plan_chunk_seconds")
        chunks_total = telemetry.counter("plan_chunks_total")
        curves_total = telemetry.counter("plan_chunk_curves_total")
    if context is not None and getattr(context, "n_jobs", 1) > 1:
        chunks = list(iter_curve_chunks(data, chunk_size=chunk_size))
        last = time.perf_counter()
        for chunk, result in zip(chunks, context.imap(step, chunks)):
            if telemetry.enabled:
                now = time.perf_counter()
                chunk_seconds.observe(now - last)
                last = now
                chunks_total.inc()
                curves_total.inc(chunk.n_samples)
            if observe is not None:
                observe(chunk, result)
            yield result
        return
    for index, chunk in enumerate(iter_curve_chunks(data, chunk_size=chunk_size)):
        if telemetry.enabled:
            start = time.perf_counter()
            with telemetry.span("chunk", index=index, curves=chunk.n_samples):
                result = step(chunk)
            chunk_seconds.observe(time.perf_counter() - start)
            chunks_total.inc()
            curves_total.inc(chunk.n_samples)
        else:
            result = step(chunk)
        if observe is not None:
            observe(chunk, result)
        yield result
