"""Unified scoring-plan layer: declarative specs, one execution path.

Four PRs of growth left the repo with four parallel ways to turn curves
into outlier scores, each with its own construction idiom (string specs
in ``make_method``, kwargs in the pipeline, JSON manifests in serving).
This package replaces them with a compiler-shaped pipeline::

    JSON / kwargs ──parse──▶ Spec ──compile──▶ ScoringPlan ──execute──▶ scores

* :mod:`repro.plan.specs` — frozen dataclass specs (smoother, mapping,
  detector, method, pipeline, stream, workload) with a registry, JSON
  (de)serialization and validation whose errors name the valid
  alternatives (:class:`~repro.exceptions.ConfigurationError`);
* :mod:`repro.plan.compile` — ``compile_plan`` lowers a spec plus a
  :class:`WorkloadSpec` (batch / micro-batch / stream, ``n_jobs``,
  ``block_bytes``, dtype) into an executable :class:`ScoringPlan`
  holding the resolved objects and an
  :class:`~repro.engine.ExecutionContext`;
* :mod:`repro.plan.executor` — the single chunked execution path
  (:func:`iter_curve_chunks` / :func:`run_chunked`) shared by serving,
  streaming and the CLI.

Every public entry point (``make_method``, ``default_methods``, the
serving manifests, ``ScoringService`` streaming routes, the experiment
harness, the CLI) constructs through this layer; a new backend, dtype
or workload shape lands here once instead of once per entry point.
"""

from repro.plan.compile import (
    MethodPlan,
    PipelinePlan,
    ScoringPlan,
    StreamPlan,
    compile_plan,
    pipeline_to_spec,
    plan_for_pipeline,
    restore_pipeline,
)
from repro.plan.executor import iter_curve_chunks, run_chunked
from repro.plan.specs import (
    DEFAULT_METHOD_SPECS,
    METHOD_KINDS,
    SPEC_TYPES,
    DetectorSpec,
    MappingSpec,
    MethodSpec,
    PipelineSpec,
    SmootherSpec,
    StreamSpec,
    WorkloadSpec,
    dump_spec,
    load_spec,
    spec_from_dict,
    spec_from_json,
    spec_hash,
    spec_to_json,
)

__all__ = [
    "DEFAULT_METHOD_SPECS",
    "DetectorSpec",
    "MappingSpec",
    "METHOD_KINDS",
    "MethodPlan",
    "MethodSpec",
    "PipelinePlan",
    "PipelineSpec",
    "SPEC_TYPES",
    "ScoringPlan",
    "SmootherSpec",
    "StreamPlan",
    "StreamSpec",
    "WorkloadSpec",
    "compile_plan",
    "dump_spec",
    "iter_curve_chunks",
    "load_spec",
    "pipeline_to_spec",
    "plan_for_pipeline",
    "restore_pipeline",
    "run_chunked",
    "spec_from_dict",
    "spec_from_json",
    "spec_to_json",
]
