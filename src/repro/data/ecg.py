"""Synthetic ECG data set — substitution for the PhysioNet ECG data.

The paper evaluates on an ECG time-series data set from PhysioNet [7]
(85 measurements per curve, binary normal/abnormal heartbeat labels —
the classical "ECG200" setup also used by Dai & Genton).  That data is
not redistributable here, so this module generates a parametric
substitute built on the standard sum-of-Gaussian-waves ECG morphology:
one heartbeat is

    x(t) = sum over waves w in {P, Q, R, S, T} of
           amp_w * exp( -(t - loc_w)^2 / (2 width_w^2) )
           + baseline wander + measurement noise

with per-sample jitter on amplitudes, locations and widths.  The
**abnormal** class mixes three clinically motivated archetypes chosen to
reproduce the property the paper's discussion relies on (Sec. 4.3): the
abnormal class contains *persistent shape* outliers, *isolated*
outliers **and mixed types**:

* ``ischemia``  — ST-segment depression with T-wave flattening /
  inversion: a *persistent shape* anomaly (deviates for many t, never
  extreme);
* ``ventricular`` — premature ventricular-style beat: early onset,
  *widened* QRS, absent P wave — a *mixed* shape + shift anomaly;
* ``spike``     — a narrow ectopic spike: a *magnitude isolated*
  anomaly;

and with probability ``mixed_rate`` a sample combines two archetypes
(*mixed type*).  See DESIGN.md §4 for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.noise import smooth_gaussian_process, white_noise
from repro.exceptions import ValidationError
from repro.fda.fdata import FDataGrid
from repro.utils.random import check_random_state
from repro.utils.validation import check_in_range, check_int, check_positive

__all__ = ["ECGWave", "ECGGenerator", "make_ecg_dataset"]

#: (amplitude, location, width) of each wave of the normal template,
#: with t normalized to one beat on [0, 1].
_NORMAL_WAVES = {
    "P": (0.18, 0.20, 0.030),
    "Q": (-0.12, 0.345, 0.012),
    "R": (1.00, 0.380, 0.014),
    "S": (-0.25, 0.415, 0.013),
    "T": (0.32, 0.620, 0.055),
}

_ARCHETYPES = ("ischemia", "ventricular", "spike")


@dataclass(frozen=True)
class ECGWave:
    """One Gaussian wave component of a heartbeat."""

    amplitude: float
    location: float
    width: float

    def __call__(self, grid: np.ndarray) -> np.ndarray:
        return self.amplitude * np.exp(-0.5 * ((grid - self.location) / self.width) ** 2)


@dataclass
class ECGGenerator:
    """Configurable generator of synthetic heartbeats.

    Parameters
    ----------
    n_points:
        Measurements per curve (paper: 85).
    noise_sigma:
        White measurement-noise standard deviation.
    wander_amplitude:
        Amplitude of the smooth baseline wander GP.
    jitter:
        Relative jitter applied to wave amplitudes and widths (and an
        absolute ±jitter/10 jitter on locations) across samples.
    mixed_rate:
        Probability that an abnormal beat combines two archetypes.
    phase_jitter:
        Benign beat-to-beat phase shift amplitude (RR-interval
        variability): the whole complex translates by U(-pj, +pj).
    random_state:
        Seed or generator.
    """

    n_points: int = 85
    noise_sigma: float = 0.04
    wander_amplitude: float = 0.07
    jitter: float = 0.10
    mixed_rate: float = 0.30
    phase_jitter: float = 0.05
    random_state: object = None
    grid: np.ndarray = field(init=False)

    def __post_init__(self):
        self.n_points = check_int(self.n_points, "n_points", minimum=8)
        self.noise_sigma = check_positive(self.noise_sigma, "noise_sigma", strict=False)
        self.wander_amplitude = check_positive(self.wander_amplitude, "wander_amplitude", strict=False)
        self.jitter = check_in_range(self.jitter, 0.0, 0.5, "jitter")
        self.mixed_rate = check_in_range(self.mixed_rate, 0.0, 1.0, "mixed_rate")
        self.phase_jitter = check_in_range(self.phase_jitter, 0.0, 0.2, "phase_jitter")
        self._rng = check_random_state(self.random_state)
        self.grid = np.linspace(0.0, 1.0, self.n_points)

    # ------------------------------------------------------------------ waves
    def _jittered_waves(self, rng: np.random.Generator) -> dict[str, ECGWave]:
        waves = {}
        # Benign beat-to-beat phase variability (RR-interval jitter): the
        # whole complex shifts by a common random offset per beat.  This
        # is the dominant benign variance of real segmented ECG and what
        # makes pointwise (per-t) outlyingness hard around the QRS.
        phase = self.phase_jitter * rng.uniform(-1, 1)
        for name, (amp, loc, width) in _NORMAL_WAVES.items():
            # The R amplitude varies substantially between benign beats
            # (electrode placement, respiration): double jitter there, so
            # raw magnitude alone does not separate the classes.
            amp_jitter = 2.0 * self.jitter if name == "R" else self.jitter
            waves[name] = ECGWave(
                amplitude=amp * (1.0 + amp_jitter * rng.uniform(-1, 1)),
                location=loc + phase + (self.jitter / 10.0) * rng.uniform(-1, 1),
                width=width * (1.0 + self.jitter * rng.uniform(-1, 1)),
            )
        return waves

    def _render(self, waves: dict[str, ECGWave], rng: np.random.Generator) -> np.ndarray:
        curve = np.zeros(self.n_points)
        for wave in waves.values():
            curve += wave(self.grid)
        if self.wander_amplitude > 0:
            curve += smooth_gaussian_process(
                1, self.grid, amplitude=self.wander_amplitude, length_scale=0.35, random_state=rng
            )[0]
        if self.noise_sigma > 0:
            curve += white_noise(1, self.grid, sigma=self.noise_sigma, random_state=rng)[0]
        return curve

    # ------------------------------------------------------------- archetypes
    def _apply_ischemia(self, waves: dict[str, ECGWave], rng) -> dict[str, ECGWave]:
        """ST depression + flattened/partly inverted T wave (persistent shape).

        Deliberately *subtle*: the deviation stays inside the benign
        amplitude range at every t (a persistent outlier never looks
        extreme pointwise) — the clinically realistic regime in which
        depth baselines lose part of the abnormal class.
        """
        depth = rng.uniform(0.08, 0.16)
        t_wave = waves["T"]
        flattened_amp = t_wave.amplitude * rng.uniform(-0.5, 0.15)
        waves = dict(waves)
        waves["T"] = ECGWave(flattened_amp, t_wave.location, t_wave.width * rng.uniform(1.0, 1.3))
        # ST segment rendered as a wide shallow negative wave between S and T.
        waves["ST"] = ECGWave(-depth, 0.50, 0.07)
        return waves

    def _apply_ventricular(self, waves: dict[str, ECGWave], rng) -> dict[str, ECGWave]:
        """Premature ventricular-style beat: early, *wide* QRS, absent P.

        The widened QRS is a persistent shape signature (the complex
        occupies 2–3x the normal duration at ordinary amplitudes) while
        the early onset adds a shift-isolated component — a mixed-type
        outlier by construction.
        """
        shift = -rng.uniform(0.030, 0.065)
        widen = rng.uniform(2.0, 3.0)
        waves = dict(waves)
        for name in ("Q", "R", "S"):
            w = waves[name]
            waves[name] = ECGWave(
                w.amplitude * rng.uniform(0.8, 1.1), w.location + shift, w.width * widen
            )
        p_wave = waves["P"]
        waves["P"] = ECGWave(p_wave.amplitude * 0.1, p_wave.location, p_wave.width)
        return waves

    def _apply_spike(self, waves: dict[str, ECGWave], rng) -> dict[str, ECGWave]:
        """Narrow ectopic spike (isolated magnitude)."""
        waves = dict(waves)
        location = rng.uniform(0.72, 0.90)
        waves["ECTOPIC"] = ECGWave(rng.uniform(0.25, 0.50), location, rng.uniform(0.008, 0.015))
        return waves

    # ------------------------------------------------------------------ API
    def normal_beats(self, n_samples: int) -> np.ndarray:
        """Generate ``n_samples`` normal heartbeats → ``(n, n_points)``."""
        n_samples = check_int(n_samples, "n_samples", minimum=1)
        return np.stack(
            [self._render(self._jittered_waves(self._rng), self._rng) for _ in range(n_samples)]
        )

    def abnormal_beats(self, n_samples: int) -> tuple[np.ndarray, list[str]]:
        """Generate abnormal heartbeats and the archetype tag of each.

        Returns ``(curves, tags)`` where a tag is an archetype name or
        ``"a+b"`` for mixed-type beats.
        """
        n_samples = check_int(n_samples, "n_samples", minimum=1)
        curves = np.empty((n_samples, self.n_points))
        tags: list[str] = []
        apply = {
            "ischemia": self._apply_ischemia,
            "ventricular": self._apply_ventricular,
            "spike": self._apply_spike,
        }
        for i in range(n_samples):
            waves = self._jittered_waves(self._rng)
            first = str(self._rng.choice(_ARCHETYPES))
            chosen = [first]
            if self._rng.uniform() < self.mixed_rate:
                second = str(self._rng.choice([a for a in _ARCHETYPES if a != first]))
                chosen.append(second)
            for archetype in chosen:
                waves = apply[archetype](waves, self._rng)
            curves[i] = self._render(waves, self._rng)
            tags.append("+".join(chosen))
        return curves, tags


def make_ecg_dataset(
    n_normal: int = 133,
    n_abnormal: int = 67,
    n_points: int = 85,
    noise_sigma: float = 0.04,
    mixed_rate: float = 0.30,
    random_state=None,
) -> tuple[FDataGrid, np.ndarray, list[str]]:
    """Build the ECG substitute data set used by the Fig. 3 experiment.

    The default sizes mirror ECG200's class balance (133 normal / 67
    abnormal over 200 series of length 85).

    Returns
    -------
    (data, labels, tags):
        ``data`` — :class:`FDataGrid` of all curves (normals first),
        ``labels`` — 0 = normal, 1 = abnormal,
        ``tags`` — per-sample archetype string (``"normal"`` for inliers).
    """
    if n_normal < 1 or n_abnormal < 0:
        raise ValidationError("need n_normal >= 1 and n_abnormal >= 0")
    generator = ECGGenerator(
        n_points=n_points,
        noise_sigma=noise_sigma,
        mixed_rate=mixed_rate,
        random_state=random_state,
    )
    normal = generator.normal_beats(n_normal)
    if n_abnormal:
        abnormal, abnormal_tags = generator.abnormal_beats(n_abnormal)
        values = np.vstack([normal, abnormal])
        labels = np.concatenate([np.zeros(n_normal, dtype=int), np.ones(n_abnormal, dtype=int)])
        tags = ["normal"] * n_normal + abnormal_tags
    else:
        values = normal
        labels = np.zeros(n_normal, dtype=int)
        tags = ["normal"] * n_normal
    return FDataGrid(values, generator.grid), labels, tags
