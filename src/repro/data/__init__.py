"""Data generators: ECG substitute, outlier-taxonomy MFD, augmentation, noise."""

from repro.data.augment import derivative_augment, power_augment, square_augment
from repro.data.ecg import ECGGenerator, ECGWave, make_ecg_dataset
from repro.data.noise import smooth_gaussian_process, white_noise
from repro.data.synthetic import (
    OUTLIER_CLASSES,
    SyntheticMFD,
    make_drifting_stream,
    make_fig1_dataset,
    make_taxonomy_dataset,
)

__all__ = [
    "ECGGenerator",
    "ECGWave",
    "OUTLIER_CLASSES",
    "SyntheticMFD",
    "derivative_augment",
    "make_drifting_stream",
    "make_ecg_dataset",
    "make_fig1_dataset",
    "make_taxonomy_dataset",
    "power_augment",
    "smooth_gaussian_process",
    "square_augment",
    "white_noise",
]
