"""Synthetic MFD generators covering the functional-outlier taxonomy.

Hubert, Rousseeuw & Segaert (2015) — the taxonomy the paper adopts
(Sec. 1.1) — distinguish *isolated* outliers (extreme for very few t:
magnitude peaks, shifts) from *persistent* outliers (never extreme but
deviating for many t: shape, amplitude), plus *mixed* types.  Each
generator here produces a bivariate (p = 2) MFD population with inliers
from a common smooth process and outliers of exactly one class — the
setup used by the per-class ablation bench (DESIGN.md A3) — and
:func:`make_fig1_dataset` rebuilds the paper's Figure 1.

Inlier model (shared):

    x_i1(t) = 2 sin(2 pi t + phi_i) + GP_i(t)
    x_i2(t) = 2 cos(2 pi t + phi_i) + GP'_i(t)

small random phase ``phi_i`` and smooth low-amplitude GP disturbances —
paths are near-circles in R^2 whose parameters are strongly
cross-correlated, so correlation-breaking outliers are *invisible*
marginally (the paper's issue (3) scenario).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.noise import smooth_gaussian_process, white_noise
from repro.exceptions import ValidationError
from repro.fda.fdata import MFDataGrid
from repro.utils.random import check_random_state
from repro.utils.validation import check_in_range, check_int

__all__ = [
    "OUTLIER_CLASSES",
    "SyntheticMFD",
    "make_taxonomy_dataset",
    "make_fig1_dataset",
    "make_drifting_stream",
]

OUTLIER_CLASSES = (
    "magnitude_isolated",
    "shift_isolated",
    "shape_persistent",
    "amplitude_persistent",
    "correlation",
    "mixed",
)


@dataclass
class SyntheticMFD:
    """Bivariate synthetic MFD factory with labelled outlier classes.

    Parameters
    ----------
    n_points:
        Grid resolution on [0, 1].
    noise_sigma:
        White measurement noise added to both parameters.
    gp_amplitude:
        Amplitude of the smooth inlier-to-inlier variation.
    random_state:
        Seed or generator.
    """

    n_points: int = 85
    noise_sigma: float = 0.03
    gp_amplitude: float = 0.15
    random_state: object = None

    def __post_init__(self):
        self.n_points = check_int(self.n_points, "n_points", minimum=8)
        self._rng = check_random_state(self.random_state)
        self.grid = np.linspace(0.0, 1.0, self.n_points)

    # ------------------------------------------------------------------ inliers
    def _base_pair(self, rng, phase=None) -> tuple[np.ndarray, np.ndarray]:
        phi = rng.uniform(-0.15, 0.15) if phase is None else phase
        arg = 2.0 * np.pi * self.grid + phi
        x1 = 2.0 * np.sin(arg)
        x2 = 2.0 * np.cos(arg)
        return x1, x2

    def _disturb(self, curve: np.ndarray, rng) -> np.ndarray:
        smooth = smooth_gaussian_process(
            1, self.grid, amplitude=self.gp_amplitude, length_scale=0.25, random_state=rng
        )[0]
        rough = white_noise(1, self.grid, sigma=self.noise_sigma, random_state=rng)[0]
        return curve + smooth + rough

    def inliers(self, n_samples: int) -> np.ndarray:
        """Inlier paths → ``(n, n_points, 2)``."""
        n_samples = check_int(n_samples, "n_samples", minimum=1)
        out = np.empty((n_samples, self.n_points, 2))
        for i in range(n_samples):
            x1, x2 = self._base_pair(self._rng)
            out[i, :, 0] = self._disturb(x1, self._rng)
            out[i, :, 1] = self._disturb(x2, self._rng)
        return out

    # ------------------------------------------------------------------ outliers
    def _outlier_pair(self, kind: str, rng) -> tuple[np.ndarray, np.ndarray]:
        x1, x2 = self._base_pair(rng)
        t = self.grid
        if kind == "magnitude_isolated":
            # Narrow extreme peak on one parameter for very few t.
            center = rng.uniform(0.2, 0.8)
            peak = rng.uniform(2.0, 3.0) * np.exp(-0.5 * ((t - center) / 0.015) ** 2)
            x1 = x1 + peak * rng.choice([-1.0, 1.0])
        elif kind == "shift_isolated":
            # Horizontal translation: extreme only near steep segments.
            shift = rng.uniform(0.05, 0.09) * rng.choice([-1.0, 1.0])
            arg = 2.0 * np.pi * (t + shift)
            x1 = 2.0 * np.sin(arg)
            x2 = 2.0 * np.cos(arg)
        elif kind == "shape_persistent":
            # Lissajous path: same amplitude envelope, different *path
            # image* in R^2 (a figure-eight instead of a circle) — never
            # extreme pointwise.  Note: a pure frequency change on the
            # same circle would be invisible to the curvature (which is
            # parametrization invariant); a shape outlier must bend the
            # path itself.
            phase = rng.uniform(-0.15, 0.15)
            x1 = 2.0 * np.sin(2.0 * np.pi * t + phase)
            x2 = 2.0 * np.cos(4.0 * np.pi * t + phase)
        elif kind == "amplitude_persistent":
            scale = rng.uniform(1.25, 1.45)
            x1, x2 = scale * x1, scale * x2
        elif kind == "correlation":
            # Break the sin/cos phase relation: both marginals stay
            # typical, only the joint path (an ellipse collapsing to a
            # segment) is atypical — the paper's mixed/correlation case.
            phi = rng.uniform(-0.15, 0.15)
            arg = 2.0 * np.pi * t + phi
            x1 = 2.0 * np.sin(arg)
            x2 = 2.0 * np.cos(arg + rng.uniform(0.8, 1.2) * rng.choice([-1.0, 1.0]))
        elif kind == "mixed":
            # Persistent shape (Lissajous path) + isolated magnitude peak.
            phase = rng.uniform(-0.15, 0.15)
            x1 = 2.0 * np.sin(2.0 * np.pi * t + phase)
            x2 = 2.0 * np.cos(4.0 * np.pi * t + phase)
            center = rng.uniform(0.3, 0.7)
            x2 = x2 + rng.uniform(1.5, 2.5) * np.exp(-0.5 * ((t - center) / 0.015) ** 2)
        else:
            raise ValidationError(
                f"unknown outlier class {kind!r}; choose from {OUTLIER_CLASSES}"
            )
        return x1, x2

    def outliers(self, n_samples: int, kind: str) -> np.ndarray:
        """Outlier paths of one taxonomy class → ``(n, n_points, 2)``."""
        n_samples = check_int(n_samples, "n_samples", minimum=1)
        out = np.empty((n_samples, self.n_points, 2))
        for i in range(n_samples):
            x1, x2 = self._outlier_pair(kind, self._rng)
            out[i, :, 0] = self._disturb(x1, self._rng)
            out[i, :, 1] = self._disturb(x2, self._rng)
        return out


def make_taxonomy_dataset(
    kind: str,
    n_inliers: int = 100,
    n_outliers: int = 10,
    n_points: int = 85,
    random_state=None,
) -> tuple[MFDataGrid, np.ndarray]:
    """One population with outliers of a single taxonomy class.

    Returns ``(data, labels)`` with labels 0 = inlier, 1 = outlier
    (outliers last).
    """
    factory = SyntheticMFD(n_points=n_points, random_state=random_state)
    inliers = factory.inliers(n_inliers)
    outliers = factory.outliers(n_outliers, kind)
    values = np.concatenate([inliers, outliers], axis=0)
    labels = np.concatenate([np.zeros(n_inliers, dtype=int), np.ones(n_outliers, dtype=int)])
    return MFDataGrid(values, factory.grid), labels


def make_drifting_stream(
    n_chunks: int = 40,
    chunk_size: int = 16,
    n_points: int = 64,
    drift_at: int | None = None,
    drift_ramp: int = 5,
    drift_phase: float = 0.7,
    drift_scale: float = 1.25,
    burst_at: tuple = (),
    burst_size: int = 4,
    burst_kind: str = "shape_persistent",
    random_state=None,
):
    """Generator of (chunk, labels) pairs with injected drift and bursts.

    The streaming test-bed: a lazily generated bivariate MFD stream of
    ``n_chunks`` chunks of ``chunk_size`` curves each.

    * **Drift** — from chunk ``drift_at`` (default: halfway) the inlier
      process itself changes, ramping linearly over ``drift_ramp``
      chunks to a phase offset ``drift_phase`` and an amplitude factor
      ``drift_scale``.  Post-drift inliers are *not* outliers — they
      are the new normal, which is exactly what a fixed-reference
      detector gets wrong and a drift-aware one must adapt to.
    * **Outlier bursts** — each chunk index in ``burst_at`` carries
      ``burst_size`` genuine outliers of taxonomy class ``burst_kind``
      (labelled 1), drawn from the *current* (possibly drifted) regime
      so they stay outliers relative to their own chunk's population.

    Yields ``(MFDataGrid, labels)`` per chunk; labels mark only the
    injected bursts (drifted inliers stay 0).  Fully reproducible under
    an int ``random_state``.
    """
    n_chunks = check_int(n_chunks, "n_chunks", minimum=1)
    chunk_size = check_int(chunk_size, "chunk_size", minimum=1)
    drift_ramp = check_int(drift_ramp, "drift_ramp", minimum=1)
    burst_size = check_int(burst_size, "burst_size", minimum=1)
    if burst_kind not in OUTLIER_CLASSES:
        raise ValidationError(
            f"unknown outlier class {burst_kind!r}; choose from {OUTLIER_CLASSES}"
        )
    burst_at = frozenset(int(i) for i in burst_at)
    if drift_at is None:
        drift_at = n_chunks // 2
    drift_at = check_int(drift_at, "drift_at", minimum=0)
    factory = SyntheticMFD(n_points=n_points, random_state=random_state)
    rng = factory._rng

    def generate():
        for chunk in range(n_chunks):
            level = min(max(chunk - drift_at + 1, 0) / drift_ramp, 1.0)
            phase_offset = level * drift_phase
            scale = 1.0 + level * (drift_scale - 1.0)
            n_outliers = burst_size if chunk in burst_at else 0
            n_outliers = min(n_outliers, chunk_size)
            values = np.empty((chunk_size, factory.n_points, 2))
            labels = np.zeros(chunk_size, dtype=int)
            for i in range(chunk_size):
                if i < chunk_size - n_outliers:
                    phase = rng.uniform(-0.15, 0.15) + phase_offset
                    x1, x2 = factory._base_pair(rng, phase=phase)
                    x1, x2 = scale * x1, scale * x2
                else:
                    x1, x2 = factory._outlier_pair(burst_kind, rng)
                    x1, x2 = scale * x1, scale * x2
                    labels[i] = 1
                values[i, :, 0] = factory._disturb(x1, rng)
                values[i, :, 1] = factory._disturb(x2, rng)
            yield MFDataGrid(values, factory.grid), labels

    return generate()


def make_fig1_dataset(random_state=0) -> tuple[MFDataGrid, np.ndarray]:
    """Rebuild the paper's Figure 1: 21 bivariate MFD, one shape outlier.

    20 inliers follow the common near-circular path; the 21st is a
    shape-persistent outlier whose values stay inside the inlier range
    for every ``t`` (it is invisible in either marginal plot but obvious
    in the (x1, x2) projection — the figure's point).
    """
    factory = SyntheticMFD(n_points=101, noise_sigma=0.02, random_state=random_state)
    inliers = factory.inliers(20)
    outlier = factory.outliers(1, "shape_persistent")
    values = np.concatenate([inliers, outlier], axis=0)
    labels = np.concatenate([np.zeros(20, dtype=int), np.ones(1, dtype=int)])
    return MFDataGrid(values, factory.grid), labels
