"""Noise models for synthetic functional data.

The paper's observation model (Sec. 2.2) is ``x(t_j) = x~(t_j) + eps_j``
with white noise; the generators here also provide smooth correlated
disturbances (a squared-exponential Gaussian process) used to make
synthetic inlier populations realistically heterogeneous.
"""

from __future__ import annotations

import numpy as np

from repro.utils.random import check_random_state
from repro.utils.validation import check_grid, check_int, check_positive

__all__ = ["white_noise", "smooth_gaussian_process"]


def white_noise(n_samples: int, grid, sigma: float = 0.05, random_state=None) -> np.ndarray:
    """I.i.d. Gaussian measurement noise → ``(n_samples, len(grid))``."""
    n_samples = check_int(n_samples, "n_samples", minimum=1)
    grid = check_grid(grid, "grid")
    sigma = check_positive(sigma, "sigma", strict=False)
    rng = check_random_state(random_state)
    return sigma * rng.standard_normal((n_samples, grid.shape[0]))


def smooth_gaussian_process(
    n_samples: int,
    grid,
    amplitude: float = 1.0,
    length_scale: float = 0.2,
    random_state=None,
) -> np.ndarray:
    """Zero-mean GP draws with squared-exponential covariance.

    ``cov(s, t) = amplitude^2 * exp(-(s - t)^2 / (2 length_scale^2))``

    Sampled exactly via the Cholesky factor of the covariance on the
    grid (with a tiny jitter for numerical PSD-ness).
    """
    n_samples = check_int(n_samples, "n_samples", minimum=1)
    grid = check_grid(grid, "grid")
    amplitude = check_positive(amplitude, "amplitude", strict=False)
    length_scale = check_positive(length_scale, "length_scale")
    rng = check_random_state(random_state)
    diffs = grid[:, None] - grid[None, :]
    cov = amplitude**2 * np.exp(-0.5 * (diffs / length_scale) ** 2)
    cov[np.diag_indices_from(cov)] += 1e-10 * max(amplitude**2, 1.0)
    chol = np.linalg.cholesky(cov)
    draws = rng.standard_normal((n_samples, grid.shape[0]))
    return draws @ chol.T
