"""UFD → MFD augmentation (paper Sec. 4.1).

The paper turns the univariate ECG series into bivariate MFD by adding
the square of each series as a second parameter — a cheap way to study
the multivariate method on univariate benchmarks.  (Derivative-based
augmentation is also provided for comparison, though the paper points
out it is redundant with the curvature mapping, which already consumes
derivatives.)
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.fda.fdata import FDataGrid, MFDataGrid
from repro.utils.validation import check_int

__all__ = ["square_augment", "power_augment", "derivative_augment"]


def square_augment(data: FDataGrid) -> MFDataGrid:
    """Augment UFD to p = 2 MFD with the squared series (paper's choice)."""
    return power_augment(data, powers=(1, 2))


def power_augment(data: FDataGrid, powers=(1, 2)) -> MFDataGrid:
    """Augment UFD to MFD with elementwise powers of the series.

    ``powers=(1, 2)`` reproduces the paper; other tuples generalize it
    (e.g. ``(1, 2, 3)`` for p = 3 paths usable with the torsion mapping).
    """
    if not isinstance(data, FDataGrid):
        raise ValidationError(f"data must be FDataGrid, got {type(data).__name__}")
    if len(powers) < 1:
        raise ValidationError("need at least one power")
    layers = []
    for power in powers:
        power = check_int(power, "power", minimum=1)
        layers.append(data.values**power)
    return MFDataGrid(np.stack(layers, axis=2), data.grid)


def derivative_augment(data: FDataGrid) -> MFDataGrid:
    """Augment UFD with its finite-difference derivative as parameter 2.

    Provided for the ablation discussed in the paper (Sec. 1.2, issue
    (1)): augmenting with derivatives is the depth-based community's
    workaround for persistent outliers, at the cost of extra parameters.
    """
    if not isinstance(data, FDataGrid):
        raise ValidationError(f"data must be FDataGrid, got {type(data).__name__}")
    derivative = np.gradient(data.values, data.grid, axis=1)
    return MFDataGrid(np.stack([data.values, derivative], axis=2), data.grid)
