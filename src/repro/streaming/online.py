"""Incremental scoring of unbounded curve streams.

:class:`StreamingDetector` turns every reference-based scorer of the
library into an online detector: each arriving curve (or micro-batch)
is scored against the *current* contents of a
:class:`~repro.streaming.window.ReferenceWindow`, the adaptive
threshold and drift monitor fold the scores in, and the window then
absorbs the arrivals — so the reference population evolves with the
stream instead of being fixed at fit time.

The point of the layer is that scoring does **not** refit the reference
statistics from scratch on every arrival.  Each scorer kind keeps an
incremental cache, refreshed per window insert/evict from the
:class:`~repro.streaming.window.WindowUpdate` signal:

=============  =======================================================
kind           cached reference statistic (per-arrival refresh cost)
=============  =======================================================
``funta``      tangent-angle ring ``arctan(diff(curve)/dt)`` — one
               O(m·p) row per insert vs O(n_ref·m·p) per refit
``dirout``     per-grid-point *sorted lanes* of the reference values
               (p = 1): the cross-sectional median/MAD and the Dir.out
               spatial centers read off the maintained order
               statistics instead of re-partitioning every column
``halfspace``  the same sorted lanes; rank counts of arrivals come
               from one broadcast comparison against the maintained
               lanes — same O(n_ref·m) asymptotics as the rebuild but
               without the per-arrival re-sort (or argsort machinery)
``pipeline``   the fitted-pipeline feature path from serving: mean and
               scatter of the windowed feature vectors via exact
               Welford insert/evict updates, with the scatter's
               Cholesky factor maintained by O(d²) rank-one
               updates/downdates instead of O(d³) refactorizations
=============  =======================================================

Every incremental path reproduces the one-shot batch computation over
the same window contents *bit-identically* (the cached quantities are
produced by the identical elementwise operations; order statistics are
order-independent), except the ``pipeline`` moments, which agree with a
from-scratch rebuild to floating-point accumulation error (~1e-10) and
are periodically resynced.  ``incremental=False`` switches every kind
to the refit-from-scratch path — the equivalence oracle the property
tests and ``benchmarks/bench_streaming.py`` pin the caches against.

For multivariate (p > 1) ``dirout``/``halfspace``, the per-grid-point
random projection directions make caching memory-prohibitive; those
configurations transparently use the refit path with a fixed
``random_state`` (documented via :attr:`StreamingDetector.effective_incremental`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
from scipy import linalg as sla

from repro.depth import _kernels
from repro.depth._kernels import MAD_SCALE
from repro.depth.dirout import dirout_scores, summarize_outlyingness
from repro.depth.functional import aggregate_depth, functional_depth
from repro.depth.funta import funta_outlyingness
from repro.exceptions import NotFittedError, ValidationError
from repro.fda.fdata import MFDataGrid, as_mfd
from repro.streaming.drift import DepthRankDrift, DriftEvent
from repro.streaming.window import ReferenceWindow, WindowUpdate
from repro.telemetry import resolve_telemetry
from repro.utils.linalg import (
    CholeskyDowndateError,
    cholesky_downdate,
    cholesky_update,
)
from repro.utils.validation import check_int

__all__ = [
    "STREAM_KINDS",
    "SortedLanes",
    "StreamBatchResult",
    "StreamingDetector",
    "merge_moments",
]

STREAM_KINDS = ("funta", "dirout", "halfspace", "pipeline")


# =====================================================================
# sorted lanes — maintained per-grid-point order statistics (p = 1)
# =====================================================================
class SortedLanes:
    """Per-grid-point sorted reference values, maintained incrementally.

    ``lanes[j, :size]`` is the ascending sort of the window's values at
    grid point ``j``.  Inserts and replacements are O(n·m) vectorized
    gathers (no re-sort); medians read off the maintained order
    statistics in O(m), replicating :func:`numpy.median` bit for bit.
    """

    def __init__(self, n_points: int, capacity: int):
        self.lanes = np.empty((n_points, capacity))
        self.size = 0

    def insert(self, new: np.ndarray) -> None:
        """Insert one value per lane (``new`` has shape ``(m,)``)."""
        n = self.size
        if n == 0:
            self.lanes[:, 0] = new
            self.size = 1
            return
        lanes = self.lanes[:, :n]
        pos = (lanes <= new[:, None]).sum(axis=1)  # rightmost insertion index
        t = np.arange(n + 1)[None, :]
        src = t - (t > pos[:, None])
        src = np.where(t == pos[:, None], 0, src)  # placeholder, overwritten
        grown = np.take_along_axis(lanes, src, axis=1)
        np.put_along_axis(grown, pos[:, None], new[:, None], axis=1)
        self.lanes[:, : n + 1] = grown
        self.size = n + 1

    def replace(self, old: np.ndarray, new: np.ndarray) -> None:
        """Swap the (exactly stored) ``old`` value for ``new``, per lane."""
        n = self.size
        lanes = self.lanes[:, :n]
        removed = (lanes < old[:, None]).sum(axis=1)  # leftmost slot == old
        ins = (lanes <= new[:, None]).sum(axis=1)  # index in the pre-delete lane
        target = ins - (ins > removed)  # index once old is deleted
        t = np.arange(n)[None, :]
        compact = t - (t > target[:, None])
        src = compact + (compact >= removed[:, None])
        src = np.where(t == target[:, None], 0, src)  # placeholder, overwritten
        updated = np.take_along_axis(lanes, src, axis=1)
        np.put_along_axis(updated, target[:, None], new[:, None], axis=1)
        lanes[:] = updated

    def reset(self) -> None:
        self.size = 0

    def median(self) -> np.ndarray:
        """Per-lane median, bit-identical to ``np.median(ref, axis=0)``."""
        n = self.size
        if n == 0:
            raise NotFittedError("sorted lanes are empty")
        if n % 2:
            return self.lanes[:, n // 2].copy()
        return (self.lanes[:, n // 2 - 1] + self.lanes[:, n // 2]) / 2.0

    def rank_counts(self, queries: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(le, lt)`` counts of each query within its lane, lane-major.

        ``queries`` is ``(n_queries, m)``; returns integer arrays of
        shape ``(m, n_queries)``: ``le[j, i] = #{ref_j <= queries[i, j]}``
        and ``lt[j, i] = #{ref_j < queries[i, j]}`` — exactly the counts
        the batch halfspace kernel derives from its stacked argsort
        (which is also lane-major; callers transpose, so downstream
        reductions see the identical memory layout and accumulate in
        the identical order).
        """
        n = self.size
        n_queries, m = queries.shape
        lanes = self.lanes[:, :n]
        queries_t = queries.T  # (m, n_queries)
        le = np.empty((m, n_queries), dtype=np.int64)
        lt = np.empty((m, n_queries), dtype=np.int64)
        # One broadcast comparison slab per query block (exact integer
        # counts, no per-lane Python loop); the block bound keeps the
        # (m, n, block) boolean scratch around ~8 MB.
        step = max(int(8 * 1024 * 1024 // max(n * m, 1)), 1)
        for q0 in range(0, n_queries, step):
            block = queries_t[:, None, q0 : q0 + step]  # (m, 1, b)
            le[:, q0 : q0 + step] = (lanes[:, :, None] <= block).sum(
                axis=1, dtype=np.int64
            )
            lt[:, q0 : q0 + step] = (lanes[:, :, None] < block).sum(
                axis=1, dtype=np.int64
            )
        return le, lt

    @classmethod
    def merged(cls, parts) -> "SortedLanes":
        """Combine shard lanes into one lane set over the union window.

        Lane content is the ascending multiset of window values per grid
        point, so the sorted concatenation of shard lanes is *bit-equal*
        to the lanes a single tracker would have built incrementally
        over the union — medians and rank counts of the merged lanes
        therefore match the single-stream cache exactly.
        """
        parts = [p for p in parts if p is not None]
        if not parts:
            raise ValidationError("merged() needs at least one SortedLanes")
        n_points = parts[0].lanes.shape[0]
        if any(p.lanes.shape[0] != n_points for p in parts):
            raise ValidationError("shard lanes must share one grid length")
        out = cls(n_points, sum(p.lanes.shape[1] for p in parts))
        filled = [p.lanes[:, : p.size] for p in parts if p.size]
        if filled:
            data = np.sort(np.concatenate(filled, axis=1), axis=1)
            out.lanes[:, : data.shape[1]] = data
            out.size = data.shape[1]
        return out


def merge_moments(parts):
    """Chan-style combine of per-shard ``(count, mean, scatter)`` partials.

    The mergeable form of the Welford insert/evict recurrences kept by
    the ``pipeline`` scorer state: for two partials A, B with
    ``δ = μ_B − μ_A``,

    ``μ = μ_A + δ·n_B/n``  and  ``S = S_A + S_B + δδᵀ·n_A·n_B/n``.

    Associative and exact up to floating-point accumulation (same class
    of error as the incremental recurrences themselves); empty partials
    (``count == 0``) are identity elements, so empty shards merge away.
    Returns the combined ``(count, mean, scatter)``.
    """
    live = [p for p in parts if p[0] > 0]
    if not live:
        return 0, None, None
    count = live[0][0]
    mean = np.array(live[0][1], dtype=np.float64, copy=True)
    scatter = np.array(live[0][2], dtype=np.float64, copy=True)
    for n_b, mean_b, scatter_b in live[1:]:
        total = count + n_b
        delta = np.asarray(mean_b, dtype=np.float64) - mean
        mean = mean + delta * (n_b / total)
        scatter = scatter + scatter_b + np.outer(delta, delta) * (count * n_b / total)
        count = total
    return count, mean, scatter


# =====================================================================
# per-kind scorer states
# =====================================================================
class _ScorerState:
    """Cache interface every kind implements (refit kinds no-op)."""

    incremental = False

    def apply(self, update: WindowUpdate) -> None:
        if update.skipped:
            return
        if update.evicted is None:
            self._insert(update.slot, update.inserted)
        else:
            self._replace(update.slot, update.inserted, update.evicted)

    def _insert(self, slot: int, item: np.ndarray) -> None:  # pragma: no cover
        pass

    def _replace(self, slot: int, item: np.ndarray, evicted: np.ndarray) -> None:  # pragma: no cover
        pass

    def reset(self) -> None:
        pass

    def score(self, items: np.ndarray, window: ReferenceWindow) -> np.ndarray:
        raise NotImplementedError

    def _reference_mfd(self, window: ReferenceWindow, grid: np.ndarray) -> MFDataGrid:
        return MFDataGrid(window.values, grid)


class _FuntaState(_ScorerState):
    """FUNTA with an incrementally maintained tangent-angle ring."""

    def __init__(self, grid, capacity, trim, block_bytes, context, incremental):
        self.grid = grid
        self.trim = trim
        self.block_bytes = block_bytes
        self.context = context
        self.incremental = incremental
        self.capacity = capacity
        self._dt = np.diff(grid)
        self._theta: np.ndarray | None = None  # (capacity, m-1, p)

    def _angles(self, values: np.ndarray) -> np.ndarray:
        """``arctan`` tangent angles, the identical elementwise op the
        batch kernel applies (``values`` is ``(..., m, p)``)."""
        return np.arctan(np.diff(values, axis=-2) / self._dt[:, None])

    def _insert(self, slot: int, item: np.ndarray) -> None:
        if not self.incremental:
            return
        if self._theta is None:
            m, p = item.shape
            self._theta = np.empty((self.capacity, m - 1, p))
        self._theta[slot] = self._angles(item)

    def _replace(self, slot: int, item: np.ndarray, evicted: np.ndarray) -> None:
        self._insert(slot, item)

    def reset(self) -> None:
        self._theta = None

    @staticmethod
    def merged_theta(states, windows) -> np.ndarray | None:
        """Union of shard tangent-angle rings in merged slot layout.

        ``states[i]``/``windows[i]`` are the scorer state and window of
        round-robin shard ``i``; the returned ``(size, m-1, p)`` array
        aligns row-for-row with ``SlidingWindow.merged(windows).values``
        (item with global index ``g`` at slot ``g mod C``), so scoring
        against the merged reference reuses the shard-computed angles
        bit for bit instead of recomputing them.  ``None`` while every
        ring is still unallocated.
        """
        n = len(states)
        total_size = sum(w.size for w in windows)
        capacity = sum(w.capacity for w in windows)
        shaped = next((s._theta for s in states if s._theta is not None), None)
        if shaped is None or total_size == 0:
            return None
        theta = np.empty((total_size, *shaped.shape[1:]))
        for i, (state, window) in enumerate(zip(states, windows)):
            cap = window.capacity
            first_local = window.n_seen - window.size
            for j in range(first_local, window.n_seen):
                theta[(j * n + i) % capacity] = state._theta[j % cap]
        return theta

    def score(self, items: np.ndarray, window: ReferenceWindow) -> np.ndarray:
        ref = window.values  # (r, m, p), physical slot order
        if not self.incremental:
            return funta_outlyingness(
                MFDataGrid(items, self.grid),
                reference=MFDataGrid(ref, self.grid),
                trim=self.trim,
                block_bytes=self.block_bytes,
                context=self.context,
            )
        theta_pts = self._angles(items)
        theta_ref = self._theta[: window.size]
        p = items.shape[2]
        per_param = [
            _kernels.funta_univariate(
                items[:, :, k],
                ref[:, :, k],
                self.grid,
                self.trim,
                same=False,
                block_bytes=self.block_bytes,
                context=self.context,
                theta_pts=np.ascontiguousarray(theta_pts[:, :, k]),
                theta_ref=np.ascontiguousarray(theta_ref[:, :, k]),
            )
            for k in range(p)
        ]
        return 1.0 - np.mean(per_param, axis=0)


class _DiroutState(_ScorerState):
    """Dir.out with maintained cross-sectional order statistics (p=1)."""

    def __init__(self, grid, capacity, n_directions, random_state, block_bytes,
                 context, incremental, p):
        self.grid = grid
        self.n_directions = n_directions
        self.random_state = random_state
        self.block_bytes = block_bytes
        self.context = context
        self.incremental = incremental and p == 1
        self._lanes = SortedLanes(grid.shape[0], capacity) if self.incremental else None

    def _insert(self, slot: int, item: np.ndarray) -> None:
        if self.incremental:
            self._lanes.insert(item[:, 0])

    def _replace(self, slot: int, item: np.ndarray, evicted: np.ndarray) -> None:
        if self.incremental:
            self._lanes.replace(evicted[:, 0], item[:, 0])

    def reset(self) -> None:
        if self._lanes is not None:
            self._lanes.reset()

    def score(self, items: np.ndarray, window: ReferenceWindow) -> np.ndarray:
        if not self.incremental:
            return dirout_scores(
                MFDataGrid(items, self.grid),
                reference=self._reference_mfd(window, self.grid),
                method="total",
                n_directions=self.n_directions,
                random_state=self.random_state,
                block_bytes=self.block_bytes,
                context=self.context,
            )
        ref = window.values[:, :, 0]  # (r, m)
        med = self._lanes.median()  # == np.median(ref, axis=0), bit for bit
        mad = MAD_SCALE * np.median(np.abs(ref - med), axis=0)
        degenerate = mad < 1e-12
        if degenerate.any():
            spread = np.std(ref, axis=0)
            mad = np.where(degenerate, np.where(spread > 1e-12, spread, 1.0), mad)
        sdo = np.abs(items[:, :, 0] - med) / mad
        centers = med[:, None]  # spatial median == univariate median (p=1)
        diffs = items - centers[None]
        norms = np.linalg.norm(diffs, axis=2, keepdims=True)
        units = np.divide(diffs, norms, out=np.zeros_like(diffs), where=norms > 1e-12)
        return summarize_outlyingness(sdo[:, :, None] * units, self.grid).total


class _HalfspaceState(_ScorerState):
    """Integrated halfspace depth via binary searches in sorted lanes."""

    def __init__(self, grid, capacity, aggregation, n_directions, random_state,
                 block_bytes, context, incremental, p):
        self.grid = grid
        self.aggregation = aggregation
        self.n_directions = n_directions
        self.random_state = random_state
        self.block_bytes = block_bytes
        self.context = context
        self.incremental = incremental and p == 1
        self._lanes = SortedLanes(grid.shape[0], capacity) if self.incremental else None

    def _insert(self, slot: int, item: np.ndarray) -> None:
        if self.incremental:
            self._lanes.insert(item[:, 0])

    def _replace(self, slot: int, item: np.ndarray, evicted: np.ndarray) -> None:
        if self.incremental:
            self._lanes.replace(evicted[:, 0], item[:, 0])

    def reset(self) -> None:
        if self._lanes is not None:
            self._lanes.reset()

    def score(self, items: np.ndarray, window: ReferenceWindow) -> np.ndarray:
        if not self.incremental:
            kwargs = {}
            if items.shape[2] > 1:
                kwargs = {
                    "n_directions": self.n_directions,
                    "random_state": self.random_state,
                }
            depth = functional_depth(
                MFDataGrid(items, self.grid),
                self._reference_mfd(window, self.grid),
                notion="halfspace",
                aggregation=self.aggregation,
                block_bytes=self.block_bytes,
                context=self.context,
                **kwargs,
            )
            return 1.0 - depth
        n_ref = window.size
        le, lt = self._lanes.rank_counts(items[:, :, 0])
        # Transposing the lane-major result reproduces the batch
        # kernel's memory layout, so the aggregation reduces in the
        # identical order (bit-identical scores, not just close ones).
        profile = (np.minimum(le, n_ref - lt) / n_ref).T
        return 1.0 - aggregate_depth(profile, self.grid, self.aggregation)


class _PipelineState(_ScorerState):
    """Windowed Mahalanobis scoring over fitted-pipeline features.

    Mean and scatter of the feature window follow exact Welford-style
    insert/evict recurrences; the scatter's Cholesky factor is carried
    along by rank-one updates (O(d²)) with a periodic full resync that
    also refreshes the conditioning ridge.  Scores are robust distances
    ``sqrt((x-μ)ᵀ Σ⁻¹ (x-μ))`` with ``Σ = (S + ridge·I) / (n-1)``.
    """

    def __init__(self, ridge_eps, resync_every, incremental):
        self.ridge_eps = ridge_eps
        self.resync_every = resync_every
        self.incremental = incremental
        self.mean: np.ndarray | None = None
        self.scatter: np.ndarray | None = None
        self._chol: np.ndarray | None = None
        self._count = 0
        self._updates_since_sync = 0

    # ------------------------------------------------------------------ moments
    def _insert(self, slot: int, item: np.ndarray) -> None:
        if not self.incremental:
            return
        x = item.ravel()
        if self.mean is None:
            self.mean = x.copy()
            self.scatter = np.zeros((x.size, x.size))
            self._count = 1
            return
        n = self._count
        delta = x - self.mean
        self.mean = self.mean + delta / (n + 1)
        # S_{n+1} = S_n + (n/(n+1)) δδᵀ, exact.
        factor = n / (n + 1.0)
        self.scatter += factor * np.outer(delta, delta)
        self._count = n + 1
        self._rank_one(delta, factor, downdate=False)

    def _evict(self, item: np.ndarray) -> None:
        n = self._count
        if n <= 1:
            self.reset()
            return
        y = item.ravel()
        delta = y - self.mean
        # Inverse Welford: S_{n-1} = S_n - (n/(n-1)) δδᵀ with δ = y - μ_n.
        factor = n / (n - 1.0)
        self.mean = self.mean - delta / (n - 1)
        self.scatter -= factor * np.outer(delta, delta)
        self._count = n - 1
        self._rank_one(delta, factor, downdate=True)

    def _replace(self, slot: int, item: np.ndarray, evicted: np.ndarray) -> None:
        if not self.incremental:
            return
        self._evict(evicted)
        self._insert(slot, item)

    def _rank_one(self, delta: np.ndarray, factor: float, downdate: bool) -> None:
        if self._chol is None:
            return
        self._updates_since_sync += 1
        if self._updates_since_sync >= self.resync_every:
            self._chol = None  # next score refactorizes (and re-ridges)
            return
        try:
            self._chol = cholesky_update(
                self._chol, np.sqrt(factor) * delta, downdate=downdate
            )
        except CholeskyDowndateError:
            self._chol = None

    def reset(self) -> None:
        self.mean = None
        self.scatter = None
        self._chol = None
        self._count = 0
        self._updates_since_sync = 0

    # ------------------------------------------------------------------ scoring
    def _refit_moments(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        mean = features.mean(axis=0)
        centered = features - mean
        return mean, centered.T @ centered

    def _factor(self, scatter: np.ndarray) -> np.ndarray:
        d = scatter.shape[0]
        ridge = self.ridge_eps * np.trace(scatter) / d
        if ridge <= 0.0:
            ridge = self.ridge_eps
        return np.linalg.cholesky(scatter + ridge * np.eye(d))

    def score(self, items: np.ndarray, window: ReferenceWindow) -> np.ndarray:
        n = window.size
        if n < 3:
            raise NotFittedError(
                "pipeline streaming scoring needs at least 3 reference curves"
            )
        if not self.incremental:
            mean, scatter = self._refit_moments(window.values)
            chol = self._factor(scatter)
        else:
            mean, scatter = self.mean, self.scatter
            if self._chol is None:
                self._chol = self._factor(scatter)
                self._updates_since_sync = 0
            chol = self._chol
        z = sla.solve_triangular(chol, (items - mean).T, lower=True)
        d_sq = (n - 1) * np.sum(z * z, axis=0)
        return np.sqrt(np.maximum(d_sq, 0.0))


# =====================================================================
# the detector
# =====================================================================
@dataclass(frozen=True)
class StreamBatchResult:
    """Outcome of one :meth:`StreamingDetector.process` call.

    Attributes
    ----------
    scores:
        Outlyingness per curve of the batch, or ``None`` while the
        window is still warming up (the batch was only ingested).
    flags:
        Boolean outlier flags (``scores > threshold``) when a threshold
        tracker is configured *and* ready, else ``None``.
    threshold:
        The threshold value used for ``flags`` (post-update), if any.
    drift:
        The :class:`~repro.streaming.drift.DriftEvent` emitted while
        folding this batch's scores in, if any.
    n_reference:
        Reference size *after* the batch was ingested.
    warmup:
        ``True`` when the batch was ingested without scoring.
    """

    scores: np.ndarray | None
    flags: np.ndarray | None
    threshold: float | None
    drift: DriftEvent | None
    n_reference: int
    warmup: bool


class StreamingDetector:
    """Online outlier detection against an evolving reference window.

    Parameters
    ----------
    kind:
        ``"funta"``, ``"dirout"``, ``"halfspace"`` or ``"pipeline"``.
    window:
        The :class:`~repro.streaming.window.ReferenceWindow` holding the
        reference sample (curves, or feature vectors for
        ``kind="pipeline"``).
    pipeline:
        Fitted :class:`~repro.core.pipeline.GeometricOutlierPipeline`
        providing the smooth→map feature path (``kind="pipeline"``
        only): arrivals are featurized once and both scored and stored
        as feature vectors.
    threshold:
        Optional streaming threshold tracker (anything with
        ``update(scores) -> float | None`` / ``reset()`` — see
        :mod:`repro.streaming.calibrate`).  When ready, every scored
        batch gets boolean ``flags``.
    drift:
        Optional :class:`~repro.streaming.drift.DepthRankDrift` fed with
        every scored batch.
    min_reference:
        Scoring starts once the window holds this many items; earlier
        batches are ingested silently (warm-up).
    update_policy:
        Which scored arrivals enter the window: ``"all"`` (default),
        ``"inliers"`` (only unflagged arrivals — keeps confirmed
        outliers from polluting the reference; requires a threshold to
        have any effect) or ``"none"`` (frozen reference).
    on_drift:
        ``"adapt"`` (default): record the event and keep going — a
        sliding window re-references by itself.  ``"rereference"``:
        reset the window, scorer caches and threshold so the reference
        re-fills from the post-drift regime (the right policy for
        reservoir windows, which otherwise dilute drift indefinitely).
    incremental:
        ``False`` switches to refit-from-scratch scoring (the oracle
        path used by tests and the streaming bench).
    aggregation:
        Profile aggregation for ``kind="halfspace"`` (``"integral"`` or
        ``"infimum"``).
    block_bytes, context:
        Kernel scratch budget / optional worker-pool fan-out, passed
        through to the depth kernels.
    options:
        Kind-specific scoring options: ``trim`` (funta);
        ``n_directions``, ``random_state`` (dirout / halfspace p > 1 —
        the seed is replayed per batch so refit scoring stays
        deterministic); ``ridge_eps``, ``resync_every`` (pipeline).
    """

    _ALLOWED_OPTIONS = {
        "funta": frozenset({"trim"}),
        "dirout": frozenset({"n_directions", "random_state"}),
        "halfspace": frozenset({"n_directions", "random_state"}),
        "pipeline": frozenset({"ridge_eps", "resync_every"}),
    }

    def __init__(
        self,
        kind: str,
        window: ReferenceWindow,
        *,
        pipeline=None,
        threshold=None,
        drift: DepthRankDrift | None = None,
        min_reference: int = 8,
        update_policy: str = "all",
        on_drift: str = "adapt",
        incremental: bool = True,
        aggregation: str = "integral",
        block_bytes: int | None = None,
        context=None,
        **options,
    ):
        if kind not in STREAM_KINDS:
            raise ValidationError(f"kind must be one of {STREAM_KINDS}, got {kind!r}")
        if not isinstance(window, ReferenceWindow):
            raise ValidationError(
                f"window must be a ReferenceWindow, got {type(window).__name__}"
            )
        if update_policy not in ("all", "inliers", "none"):
            raise ValidationError(
                f"update_policy must be 'all', 'inliers' or 'none', got {update_policy!r}"
            )
        if on_drift not in ("adapt", "rereference"):
            raise ValidationError(
                f"on_drift must be 'adapt' or 'rereference', got {on_drift!r}"
            )
        unknown = set(options) - self._ALLOWED_OPTIONS[kind]
        if unknown:
            raise ValidationError(
                f"unknown options for kind {kind!r}: {sorted(unknown)}; "
                f"allowed: {sorted(self._ALLOWED_OPTIONS[kind])}"
            )
        if kind == "pipeline":
            from repro.core.pipeline import GeometricOutlierPipeline

            if not isinstance(pipeline, GeometricOutlierPipeline) or not pipeline._fitted:
                raise ValidationError(
                    "kind='pipeline' needs a fitted GeometricOutlierPipeline"
                )
        elif pipeline is not None:
            raise ValidationError("pipeline is only accepted for kind='pipeline'")
        if drift is not None and not isinstance(drift, DepthRankDrift):
            raise ValidationError(
                f"drift must be a DepthRankDrift, got {type(drift).__name__}"
            )
        if threshold is not None and not hasattr(threshold, "update"):
            raise ValidationError(
                "threshold must expose update(scores); see repro.streaming.calibrate"
            )
        floor = 3 if kind == "pipeline" else 2
        self.kind = kind
        self.window = window
        self.pipeline = pipeline
        self.threshold = threshold
        self.drift = drift
        self.min_reference = check_int(min_reference, "min_reference", minimum=floor)
        if self.min_reference > window.capacity:
            raise ValidationError(
                f"min_reference={self.min_reference} exceeds the window "
                f"capacity {window.capacity}"
            )
        self.update_policy = update_policy
        self.on_drift = on_drift
        self.incremental = bool(incremental)
        self.aggregation = aggregation
        self.block_bytes = block_bytes
        self.context = context
        self.options = options
        self.grid: np.ndarray | None = None
        self.n_parameters: int | None = None
        self._scorer: _ScorerState | None = None
        self.n_seen = 0
        self.n_scored = 0
        self.n_flagged = 0
        self.n_rereferences = 0
        self.attach_telemetry(resolve_telemetry(context))

    def attach_telemetry(self, telemetry) -> None:
        """Bind this detector's counters/histograms into ``telemetry``.

        Called with the owning context's handle at construction and
        again by :meth:`ScoringService.register`, so a detector served
        through a service emits into the service's registry.  The drift
        monitor (if any) is re-bound alongside, labelled by this
        detector's kind.
        """
        telemetry = resolve_telemetry(None, telemetry)
        self.telemetry = telemetry
        self._m_arrivals = telemetry.counter("streaming_arrivals_total", kind=self.kind)
        self._m_scored = telemetry.counter("streaming_scored_total", kind=self.kind)
        self._m_flagged = telemetry.counter("streaming_flagged_total", kind=self.kind)
        self._m_rereferences = telemetry.counter(
            "streaming_rereferences_total", kind=self.kind
        )
        self._m_process_seconds = telemetry.histogram(
            "streaming_process_seconds", kind=self.kind
        )
        if self.drift is not None:
            self.drift.attach_telemetry(telemetry, kind=self.kind)

    # ------------------------------------------------------------------ specs
    @classmethod
    def from_spec(cls, spec, context=None) -> "StreamingDetector":
        """Construct a detector (window + threshold + drift) from a spec.

        ``spec`` is a :class:`~repro.plan.StreamSpec` (or its tagged
        dict form); construction delegates to the plan compiler — the
        same path ``repro stream-score`` uses.
        """
        from repro.plan import compile_plan

        return compile_plan(spec, context=context).build()

    # ------------------------------------------------------------------ plumbing
    @property
    def n_reference(self) -> int:
        return self.window.size

    @property
    def ready(self) -> bool:
        """Whether the window is warm enough to score."""
        return self.window.size >= self.min_reference

    @property
    def effective_incremental(self) -> bool:
        """Whether scoring actually runs on incremental caches.

        ``dirout``/``halfspace`` with p > 1 silently use the seeded
        refit path (their random-direction statistics cannot be cached
        within reasonable memory).
        """
        if self._scorer is None:
            return self.incremental
        return bool(self._scorer.incremental)

    @property
    def drift_events(self) -> list[DriftEvent]:
        return [] if self.drift is None else self.drift.events

    def _coerce(self, data) -> MFDataGrid:
        mfd = as_mfd(data)
        if self.grid is None:
            self.grid = mfd.grid.copy()
            self.n_parameters = mfd.n_parameters
        else:
            if mfd.n_points != self.grid.shape[0] or not np.allclose(mfd.grid, self.grid):
                raise ValidationError("stream batches must share the detector's grid")
            if mfd.n_parameters != self.n_parameters:
                raise ValidationError(
                    f"stream batch has {mfd.n_parameters} parameters, "
                    f"expected {self.n_parameters}"
                )
        return mfd

    def _make_scorer(self) -> _ScorerState:
        capacity = self.window.capacity
        if self.kind == "funta":
            return _FuntaState(
                self.grid, capacity, self.options.get("trim", 0.0),
                self.block_bytes, self.context, self.incremental,
            )
        if self.kind == "dirout":
            return _DiroutState(
                self.grid, capacity,
                self.options.get("n_directions", 200),
                self.options.get("random_state", 0),
                self.block_bytes, self.context, self.incremental,
                self.n_parameters,
            )
        if self.kind == "halfspace":
            return _HalfspaceState(
                self.grid, capacity, self.aggregation,
                self.options.get("n_directions", 500),
                self.options.get("random_state", 0),
                self.block_bytes, self.context, self.incremental,
                self.n_parameters,
            )
        return _PipelineState(
            self.options.get("ridge_eps", 1e-9),
            check_int(self.options.get("resync_every", 64), "resync_every", minimum=1),
            self.incremental,
        )

    def _featurize(self, mfd: MFDataGrid) -> np.ndarray:
        """Batch → the items actually scored and stored (curves or features)."""
        if self.kind == "pipeline":
            return self.pipeline.transform(mfd)
        return mfd.values

    def _ensure_scorer(self) -> _ScorerState:
        if self._scorer is None:
            self._scorer = self._make_scorer()
            # The window may have been populated before this detector
            # attached to it (a shared or externally primed window):
            # replay its contents in slot order so every incremental
            # cache starts in sync with what it will score against.
            for slot in range(self.window.size):
                self._scorer._insert(slot, self.window.values[slot])
        return self._scorer

    def _ingest(self, items: np.ndarray, mask: np.ndarray | None = None) -> None:
        self._ensure_scorer()
        for i in range(items.shape[0]):
            if mask is not None and not mask[i]:
                continue
            update = self.window.observe(items[i])
            self._scorer.apply(update)

    def _rereference(self) -> None:
        self.window.reset()
        if self._scorer is not None:
            self._scorer.reset()
        if self.threshold is not None and hasattr(self.threshold, "reset"):
            self.threshold.reset()
        self.n_rereferences += 1
        self._m_rereferences.inc()

    # ------------------------------------------------------------------ API
    def prime(self, reference) -> "StreamingDetector":
        """Bulk-load an initial reference sample (no scoring, no drift)."""
        mfd = self._coerce(reference)
        self._ingest(self._featurize(mfd))
        self.n_seen += mfd.n_samples
        self._m_arrivals.inc(mfd.n_samples)
        return self

    def score(self, data) -> np.ndarray:
        """Score a batch against the current reference — stateless.

        Neither the window nor the threshold/drift trackers are
        touched; use :meth:`process` for the full online step.
        """
        mfd = self._coerce(data)
        if not self.ready:
            raise NotFittedError(
                f"streaming reference holds {self.window.size} curves but "
                f"min_reference={self.min_reference}; prime() or process() more data"
            )
        return self._ensure_scorer().score(self._featurize(mfd), self.window)

    # Stateless scoring under the common scorer surface, so a streaming
    # detector can be registered with a ScoringService and serve direct
    # score() traffic next to pipelines and DepthScorers.
    score_samples = score

    def process(self, data) -> StreamBatchResult:
        """One online step: score, threshold, drift-check, ingest."""
        start = time.perf_counter() if self.telemetry.enabled else 0.0
        mfd = self._coerce(data)
        items = self._featurize(mfd)
        self.n_seen += mfd.n_samples
        self._m_arrivals.inc(mfd.n_samples)
        if not self.ready:
            self._ingest(items)
            if self.telemetry.enabled:
                self._m_process_seconds.observe(time.perf_counter() - start)
            return StreamBatchResult(
                scores=None, flags=None, threshold=None, drift=None,
                n_reference=self.window.size, warmup=True,
            )
        scores = self._ensure_scorer().score(items, self.window)
        self.n_scored += scores.shape[0]
        self._m_scored.inc(scores.shape[0])
        threshold_value = None
        flags = None
        if self.threshold is not None:
            threshold_value = self.threshold.update(scores)
            if threshold_value is not None:
                flags = scores > threshold_value
                flagged = int(flags.sum())
                self.n_flagged += flagged
                self._m_flagged.inc(flagged)
        # Scores are only distributionally comparable once the reference
        # has stopped growing: while the window fills, every arrival is
        # ranked against a larger sample than the last, which shifts the
        # score distribution without any drift in the data.  Feed the
        # monitor only at-capacity scores.
        event = None
        if self.drift is not None and self.window.full:
            event = self.drift.update(scores)
        if event is not None and self.on_drift == "rereference":
            self._rereference()
        if self.update_policy == "none":
            mask = np.zeros(items.shape[0], dtype=bool)
        elif self.update_policy == "inliers" and flags is not None:
            mask = ~flags
        else:
            mask = None
        self._ingest(items, mask)
        if self.telemetry.enabled:
            self._m_process_seconds.observe(time.perf_counter() - start)
        return StreamBatchResult(
            scores=scores, flags=flags, threshold=threshold_value,
            drift=event, n_reference=self.window.size, warmup=False,
        )

    def stats(self) -> dict:
        """Counters for monitoring (mirrors ``ScoringService.stats``)."""
        return {
            "kind": self.kind,
            "n_seen": self.n_seen,
            "n_scored": self.n_scored,
            "n_flagged": self.n_flagged,
            "n_reference": self.window.size,
            "n_rereferences": self.n_rereferences,
            "drift_events": len(self.drift_events),
            "incremental": self.effective_incremental,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamingDetector({self.kind!r}, window={self.window!r}, "
            f"scored={self.n_scored})"
        )
