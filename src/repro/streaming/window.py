"""Online reference maintainers: ring-buffer windows over a curve stream.

A streaming detector scores each arriving curve against a *reference
sample* that must itself evolve with the stream.  This module provides
the two canonical maintenance policies as preallocated ring buffers:

* :class:`SlidingWindow` — keep exactly the last ``capacity`` items;
  every arrival evicts the oldest item once the buffer is full.  The
  reference tracks the recent past, so it adapts to drift by itself at
  the cost of forgetting long-range structure.
* :class:`ReservoirWindow` — Vitter's Algorithm R: once full, the
  ``t``-th arrival replaces a uniformly random slot with probability
  ``capacity / t``, so the buffer is always a uniform sample of
  *everything* seen so far.  The reference stays representative of the
  whole history (robust to bursts) but dilutes drift; pair it with a
  drift monitor that triggers :meth:`~ReferenceWindow.reset`.

Both policies write in place into one preallocated ``(capacity, ...)``
buffer and report every mutation as a :class:`WindowUpdate` — the slot
touched, the inserted item and a copy of the evicted one — which is the
exact signal the incremental scorer caches of
:mod:`repro.streaming.online` need to refresh their reference
statistics without a rebuild.  Reservoir eviction is seeded and
reproducible: an integer ``random_state`` (optionally spawned through a
shared :class:`~repro.engine.ExecutionContext` master seed) always
replays the same eviction schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.random import check_random_state
from repro.utils.validation import check_int

__all__ = ["WindowUpdate", "ReferenceWindow", "SlidingWindow", "ReservoirWindow"]


@dataclass(frozen=True)
class WindowUpdate:
    """One window mutation (the unit the scorer caches consume).

    Attributes
    ----------
    slot:
        Buffer row written, or ``None`` when the arrival was skipped
        (a full reservoir rejects ``1 - capacity/t`` of arrivals).
    inserted:
        The stored item (a view into the buffer row) when ``slot`` is
        set, else ``None``.
    evicted:
        A copy of the item the insert overwrote, or ``None`` while the
        window is still growing (or when the arrival was skipped).
    """

    slot: int | None
    inserted: np.ndarray | None
    evicted: np.ndarray | None

    @property
    def skipped(self) -> bool:
        return self.slot is None


class ReferenceWindow:
    """Base ring-buffer window; subclasses choose the eviction policy.

    The buffer is allocated lazily on the first :meth:`observe`, taking
    its item shape from that first item — windows therefore work for
    raw curves ``(m,)``/``(m, p)`` and for feature vectors ``(d,)``
    alike.  ``values`` exposes the filled region in *physical slot
    order* (a view, no copy); :meth:`ordered_values` materializes the
    insertion-age order when a deterministic logical order is needed.
    """

    def __init__(self, capacity: int):
        self.capacity = check_int(capacity, "capacity", minimum=2)
        self._values: np.ndarray | None = None
        self.size = 0
        self.n_seen = 0

    # ------------------------------------------------------------------ storage
    def _ensure_buffer(self, item: np.ndarray) -> np.ndarray:
        item = np.asarray(item, dtype=np.float64)
        if item.ndim < 1:
            raise ValidationError("window items must be arrays (curve or feature rows)")
        if self._values is None:
            self._values = np.empty((self.capacity, *item.shape))
        elif item.shape != self._values.shape[1:]:
            raise ValidationError(
                f"window item shape {item.shape} does not match the buffer "
                f"item shape {self._values.shape[1:]}"
            )
        return item

    @property
    def values(self) -> np.ndarray:
        """Filled buffer rows, physical slot order (a view, not a copy)."""
        if self._values is None:
            return np.empty((0,))
        return self._values[: self.size]

    @property
    def full(self) -> bool:
        return self.size == self.capacity

    def ordered_slots(self) -> np.ndarray:
        """Physical slots sorted oldest → newest (subclass-defined)."""
        return np.arange(self.size)

    def ordered_values(self) -> np.ndarray:
        """The window contents oldest → newest (a gathered copy)."""
        return self.values[self.ordered_slots()]

    def reset(self) -> None:
        """Empty the window (buffer and RNG state are kept).

        The re-reference action of the drift path: the next arrivals
        refill the buffer from the post-drift regime.
        """
        self.size = 0
        self.n_seen = 0

    # ------------------------------------------------------------------ policy
    def _choose_slot(self) -> int | None:
        raise NotImplementedError

    def observe(self, item) -> WindowUpdate:
        """Offer one item to the window; returns the mutation applied."""
        item = self._ensure_buffer(item)
        self.n_seen += 1
        if self.size < self.capacity:
            slot = self.size
            self._values[slot] = item
            self.size += 1
            return WindowUpdate(slot, self._values[slot], None)
        slot = self._choose_slot()
        if slot is None:
            return WindowUpdate(None, None, None)
        evicted = self._values[slot].copy()
        self._values[slot] = item
        return WindowUpdate(slot, self._values[slot], evicted)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(capacity={self.capacity}, size={self.size}, "
            f"n_seen={self.n_seen})"
        )


class SlidingWindow(ReferenceWindow):
    """Keep the last ``capacity`` items; evict strictly oldest-first.

    Once full, arrival ``t`` overwrites slot ``t mod capacity`` — the
    slot holding the oldest item — so the buffer is the true trailing
    window of the stream at every step.
    """

    def _choose_slot(self) -> int:
        # n_seen was already incremented by observe: arrival t
        # (0-indexed, t = n_seen - 1) lands in slot t mod capacity.
        return (self.n_seen - 1) % self.capacity

    def ordered_slots(self) -> np.ndarray:
        if not self.full:
            return np.arange(self.size)
        head = self.n_seen % self.capacity  # oldest item lives here
        return (head + np.arange(self.capacity)) % self.capacity


class ReservoirWindow(ReferenceWindow):
    """Uniform reservoir sample of the whole stream (Algorithm R).

    Parameters
    ----------
    capacity:
        Reservoir size.
    random_state:
        Seed / generator for the replacement draws.  An int seed makes
        the whole eviction schedule reproducible.
    context:
        Optional :class:`~repro.engine.ExecutionContext`; when given
        together with a seed, the eviction stream is *spawned* from the
        master seed (``context.spawn_generators``), so several windows
        sharing one experiment seed still consume statistically
        independent streams.
    """

    def __init__(self, capacity: int, random_state=None, context=None):
        super().__init__(capacity)
        if context is not None:
            self._rng = context.spawn_generators(random_state, 1)[0]
        else:
            self._rng = check_random_state(random_state)

    def _choose_slot(self) -> int | None:
        # Arrival number t (1-indexed) keeps a slot with prob capacity/t.
        j = int(self._rng.integers(0, self.n_seen))
        return j if j < self.capacity else None

    def ordered_slots(self) -> np.ndarray:
        # A reservoir has no meaningful age order; slot order is the
        # canonical deterministic order.
        return np.arange(self.size)
