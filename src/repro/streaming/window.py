"""Online reference maintainers: ring-buffer windows over a curve stream.

A streaming detector scores each arriving curve against a *reference
sample* that must itself evolve with the stream.  This module provides
the two canonical maintenance policies as preallocated ring buffers:

* :class:`SlidingWindow` — keep exactly the last ``capacity`` items;
  every arrival evicts the oldest item once the buffer is full.  The
  reference tracks the recent past, so it adapts to drift by itself at
  the cost of forgetting long-range structure.
* :class:`ReservoirWindow` — Vitter's Algorithm R: once full, the
  ``t``-th arrival replaces a uniformly random slot with probability
  ``capacity / t``, so the buffer is always a uniform sample of
  *everything* seen so far.  The reference stays representative of the
  whole history (robust to bursts) but dilutes drift; pair it with a
  drift monitor that triggers :meth:`~ReferenceWindow.reset`.

Both policies write in place into one preallocated ``(capacity, ...)``
buffer and report every mutation as a :class:`WindowUpdate` — the slot
touched, the inserted item and a copy of the evicted one — which is the
exact signal the incremental scorer caches of
:mod:`repro.streaming.online` need to refresh their reference
statistics without a rebuild.  Reservoir eviction is seeded and
reproducible: an integer ``random_state`` (optionally spawned through a
shared :class:`~repro.engine.ExecutionContext` master seed) always
replays the same eviction schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.random import check_random_state
from repro.utils.validation import check_int

__all__ = ["WindowUpdate", "ReferenceWindow", "SlidingWindow", "ReservoirWindow"]


@dataclass(frozen=True)
class WindowUpdate:
    """One window mutation (the unit the scorer caches consume).

    Attributes
    ----------
    slot:
        Buffer row written, or ``None`` when the arrival was skipped
        (a full reservoir rejects ``1 - capacity/t`` of arrivals).
    inserted:
        The stored item (a view into the buffer row) when ``slot`` is
        set, else ``None``.
    evicted:
        A copy of the item the insert overwrote, or ``None`` while the
        window is still growing (or when the arrival was skipped).
    """

    slot: int | None
    inserted: np.ndarray | None
    evicted: np.ndarray | None

    @property
    def skipped(self) -> bool:
        return self.slot is None


class ReferenceWindow:
    """Base ring-buffer window; subclasses choose the eviction policy.

    The buffer is allocated lazily on the first :meth:`observe`, taking
    its item shape from that first item — windows therefore work for
    raw curves ``(m,)``/``(m, p)`` and for feature vectors ``(d,)``
    alike.  ``values`` exposes the filled region in *physical slot
    order* (a view, no copy); :meth:`ordered_values` materializes the
    insertion-age order when a deterministic logical order is needed.
    """

    def __init__(self, capacity: int):
        self.capacity = check_int(capacity, "capacity", minimum=2)
        self._values: np.ndarray | None = None
        self.size = 0
        self.n_seen = 0

    # ------------------------------------------------------------------ storage
    def _ensure_buffer(self, item: np.ndarray) -> np.ndarray:
        item = np.asarray(item, dtype=np.float64)
        if item.ndim < 1:
            raise ValidationError("window items must be arrays (curve or feature rows)")
        if self._values is None:
            self._values = np.empty((self.capacity, *item.shape))
        elif item.shape != self._values.shape[1:]:
            raise ValidationError(
                f"window item shape {item.shape} does not match the buffer "
                f"item shape {self._values.shape[1:]}"
            )
        return item

    @property
    def values(self) -> np.ndarray:
        """Filled buffer rows, physical slot order (a view, not a copy)."""
        if self._values is None:
            return np.empty((0,))
        return self._values[: self.size]

    @property
    def full(self) -> bool:
        return self.size == self.capacity

    def ordered_slots(self) -> np.ndarray:
        """Physical slots sorted oldest → newest (subclass-defined)."""
        return np.arange(self.size)

    def ordered_values(self) -> np.ndarray:
        """The window contents oldest → newest (a gathered copy)."""
        return self.values[self.ordered_slots()]

    def reset(self) -> None:
        """Empty the window (buffer and RNG state are kept).

        The re-reference action of the drift path: the next arrivals
        refill the buffer from the post-drift regime.
        """
        self.size = 0
        self.n_seen = 0

    # ------------------------------------------------------------------ policy
    def _choose_slot(self) -> int | None:
        raise NotImplementedError

    def observe(self, item) -> WindowUpdate:
        """Offer one item to the window; returns the mutation applied."""
        item = self._ensure_buffer(item)
        self.n_seen += 1
        if self.size < self.capacity:
            slot = self.size
            self._values[slot] = item
            self.size += 1
            return WindowUpdate(slot, self._values[slot], None)
        slot = self._choose_slot()
        if slot is None:
            return WindowUpdate(None, None, None)
        evicted = self._values[slot].copy()
        self._values[slot] = item
        return WindowUpdate(slot, self._values[slot], evicted)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(capacity={self.capacity}, size={self.size}, "
            f"n_seen={self.n_seen})"
        )


class SlidingWindow(ReferenceWindow):
    """Keep the last ``capacity`` items; evict strictly oldest-first.

    Once full, arrival ``t`` overwrites slot ``t mod capacity`` — the
    slot holding the oldest item — so the buffer is the true trailing
    window of the stream at every step.

    Sliding windows are *mergeable under round-robin dispatch*: when a
    global stream is dealt to N shard windows of capacity ``C/N``
    (arrival ``g`` to shard ``g mod N``), the union of the shard
    contents is exactly the last ``C`` global arrivals.  :meth:`merged`
    reconstructs the single global window from such shards — including
    its physical slot layout, so downstream consumers that read
    ``values`` in slot order see bit-identical state — and
    :meth:`split` is its inverse.
    """

    def _choose_slot(self) -> int:
        # n_seen was already incremented by observe: arrival t
        # (0-indexed, t = n_seen - 1) lands in slot t mod capacity.
        return (self.n_seen - 1) % self.capacity

    def ordered_slots(self) -> np.ndarray:
        if not self.full:
            return np.arange(self.size)
        head = self.n_seen % self.capacity  # oldest item lives here
        return (head + np.arange(self.capacity)) % self.capacity

    # ------------------------------------------------------------------ sharding
    @classmethod
    def merged(cls, shards) -> "SlidingWindow":
        """Recombine round-robin shard windows into the global window.

        ``shards[i]`` must have received exactly the global arrivals
        ``g`` with ``g mod N == i`` (equal capacities); the result is
        state-identical — buffer layout included — to one
        ``SlidingWindow(N * capacity)`` that saw the whole stream.
        """
        shards = list(shards)
        if not shards:
            raise ValidationError("merged() needs at least one shard window")
        for shard in shards:
            if not isinstance(shard, SlidingWindow):
                raise ValidationError(
                    f"merged() takes SlidingWindow shards, got {type(shard).__name__}"
                )
        n = len(shards)
        cap = shards[0].capacity
        if any(s.capacity != cap for s in shards):
            raise ValidationError("shard windows must share one capacity")
        total_seen = sum(s.n_seen for s in shards)
        for i, shard in enumerate(shards):
            expected = (total_seen - i + n - 1) // n
            if shard.n_seen != expected:
                raise ValidationError(
                    f"shard {i} saw {shard.n_seen} arrivals but round-robin "
                    f"dispatch of {total_seen} implies {expected}; merge only "
                    "applies to round-robin shard windows"
                )
        merged = cls(cap * n)
        merged.n_seen = total_seen
        for i, shard in enumerate(shards):
            if shard.size == 0:
                continue
            items = shard.ordered_values()  # oldest -> newest
            first_local = shard.n_seen - shard.size
            for j in range(shard.size):
                item = merged._ensure_buffer(items[j])
                g = (first_local + j) * n + i
                merged._values[g % merged.capacity] = item
                merged.size += 1
        return merged

    def split(self, n_shards: int) -> "list[SlidingWindow]":
        """Deal this window into ``n_shards`` round-robin shard windows.

        The inverse of :meth:`merged`: shard ``i`` ends up exactly as if
        it had received the global arrivals ``g mod n_shards == i`` all
        along (capacity ``capacity / n_shards``, which must divide and
        leave at least 2 slots per shard).
        """
        n_shards = check_int(n_shards, "n_shards", minimum=1)
        if self.capacity % n_shards:
            raise ValidationError(
                f"window capacity {self.capacity} must divide evenly across "
                f"{n_shards} shards"
            )
        shard_cap = self.capacity // n_shards
        if shard_cap < 2:
            raise ValidationError(
                f"window capacity {self.capacity} leaves {shard_cap} slots per "
                f"shard; every shard window needs >= 2"
            )
        shards = [SlidingWindow(shard_cap) for _ in range(n_shards)]
        total = self.n_seen
        for i, shard in enumerate(shards):
            shard.n_seen = (total - i + n_shards - 1) // n_shards
            shard.size = min(shard.n_seen, shard_cap)
        for g in range(total - self.size, total):
            item = self._values[g % self.capacity]
            shard = shards[g % n_shards]
            if shard._values is None:
                shard._values = np.empty((shard_cap, *item.shape))
            shard._values[(g // n_shards) % shard_cap] = item
        return shards


class ReservoirWindow(ReferenceWindow):
    """Uniform reservoir sample of the whole stream (Algorithm R).

    Parameters
    ----------
    capacity:
        Reservoir size.
    random_state:
        Seed / generator for the replacement draws.  An int seed makes
        the whole eviction schedule reproducible.
    context:
        Optional :class:`~repro.engine.ExecutionContext`; when given
        together with a seed, the eviction stream is *spawned* from the
        master seed (``context.spawn_generators``), so several windows
        sharing one experiment seed still consume statistically
        independent streams.
    """

    def __init__(self, capacity: int, random_state=None, context=None):
        super().__init__(capacity)
        if context is not None:
            self._rng = context.spawn_generators(random_state, 1)[0]
        else:
            self._rng = check_random_state(random_state)

    def _choose_slot(self) -> int | None:
        # Arrival number t (1-indexed) keeps a slot with prob capacity/t.
        j = int(self._rng.integers(0, self.n_seen))
        return j if j < self.capacity else None

    def ordered_slots(self) -> np.ndarray:
        # A reservoir has no meaningful age order; slot order is the
        # canonical deterministic order.
        return np.arange(self.size)

    # ------------------------------------------------------------------ sharding
    @classmethod
    def merged(cls, shards, capacity=None, random_state=None) -> "ReservoirWindow":
        """Combine shard reservoirs into one reservoir-distributed window.

        Each retained item of shard ``i`` stands for ``n_seen_i /
        size_i`` stream arrivals; the merge draws ``capacity`` of the
        pooled items by weighted sampling without replacement
        (Efraimidis–Spirakis keys ``u ** (1/w)``), which preserves the
        uniform-over-history marginal of Algorithm R.  Unlike the
        sliding-window merge this is a *resample*, not a bit-exact
        reconstruction — reservoirs forget arrival order, so only the
        distribution is mergeable.  Seeded and reproducible via
        ``random_state``.
        """
        shards = list(shards)
        if not shards:
            raise ValidationError("merged() needs at least one shard window")
        for shard in shards:
            if not isinstance(shard, ReservoirWindow):
                raise ValidationError(
                    f"merged() takes ReservoirWindow shards, got {type(shard).__name__}"
                )
        if capacity is None:
            capacity = sum(s.capacity for s in shards)
        total_seen = sum(s.n_seen for s in shards)
        merged = cls(capacity, random_state=random_state)
        merged.n_seen = total_seen
        pool = [s.values for s in shards if s.size]
        if not pool:
            return merged
        items = np.concatenate(pool, axis=0)
        weights = np.concatenate(
            [np.full(s.size, s.n_seen / s.size) for s in shards if s.size]
        )
        if items.shape[0] > capacity:
            keys = merged._rng.random(items.shape[0]) ** (1.0 / weights)
            keep = np.argsort(keys)[-capacity:]
            items = items[np.sort(keep)]
        merged._values = np.empty((merged.capacity, *items.shape[1:]))
        merged._values[: items.shape[0]] = items
        merged.size = items.shape[0]
        return merged

    def split(self, n_shards: int, random_state=None) -> "list[ReservoirWindow]":
        """Deal this reservoir into ``n_shards`` shard reservoirs.

        A seeded shuffle followed by a round-robin deal: each shard gets
        a uniform subsample (capacity ``capacity / n_shards``, which
        must divide and leave >= 2 slots) and a proportional share of
        ``n_seen``, so every shard is itself a valid Algorithm-R state
        over ``1 / n_shards`` of the history.
        """
        n_shards = check_int(n_shards, "n_shards", minimum=1)
        if self.capacity % n_shards:
            raise ValidationError(
                f"window capacity {self.capacity} must divide evenly across "
                f"{n_shards} shards"
            )
        shard_cap = self.capacity // n_shards
        if shard_cap < 2:
            raise ValidationError(
                f"window capacity {self.capacity} leaves {shard_cap} slots per "
                f"shard; every shard window needs >= 2"
            )
        rng = check_random_state(random_state)
        order = rng.permutation(self.size)
        shards = []
        for i in range(n_shards):
            shard = ReservoirWindow(shard_cap, random_state=rng.integers(2**32))
            picks = order[i::n_shards][:shard_cap]
            shard.n_seen = (self.n_seen - i + n_shards - 1) // n_shards
            if picks.size:
                items = self.values[np.sort(picks)]
                shard._values = np.empty((shard_cap, *items.shape[1:]))
                shard._values[: items.shape[0]] = items
                shard.size = items.shape[0]
            shards.append(shard)
        return shards
