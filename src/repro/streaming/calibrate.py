"""Drift-aware online thresholds for unbounded score streams.

Two quantile trackers back the streaming decision boundary:

* :class:`~repro.detectors.threshold.StreamingQuantileThreshold`
  (re-exported here) — the *exact* tracker: a ring buffer of the last
  ``capacity`` scores whose quantile is re-read after every update.
  Memory is O(capacity); the threshold reflects exactly the trailing
  window, so it forgets old regimes at the window rate.
* :class:`P2Quantile` / :class:`P2QuantileThreshold` — the Jain &
  Chlamtac P² algorithm: five markers track the target quantile with
  O(1) memory over the *whole* stream, no buffer at all.  The estimate
  is approximate (parabolic interpolation between markers) but
  converges on stationary streams; use it when even a score ring is too
  much state, or when the threshold should average over the full
  history rather than a trailing window.

Both expose the same ``update(scores) -> float`` / ``value`` /
``ready`` / ``reset()`` surface, which is the threshold contract
:class:`~repro.streaming.online.StreamingDetector` consumes;
:func:`make_threshold` builds either flavour from a config string.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.threshold import LearnedThreshold, StreamingQuantileThreshold
from repro.exceptions import ValidationError
from repro.utils.validation import as_float_array, check_in_range, check_int

__all__ = [
    "StreamingQuantileThreshold",
    "P2Quantile",
    "P2QuantileThreshold",
    "make_threshold",
]


class P2Quantile:
    """P² single-quantile estimator (Jain & Chlamtac 1985), O(1) memory.

    Five markers hold (estimated) heights at the min, the q/2, q,
    (1+q)/2 quantiles and the max; every observation shifts the marker
    positions and adjusts heights by piecewise-parabolic (falling back
    to linear) interpolation.  Until five observations arrive the
    estimate is exact (order statistic of the seen values).
    """

    def __init__(self, q: float):
        self.q = check_in_range(q, 0.0, 1.0, "q", inclusive=(False, False))
        self.n_seen = 0
        self._heights = np.empty(5)
        # Marker positions (1-indexed as in the paper) and their targets.
        self._positions = np.arange(1.0, 6.0)
        self._desired = np.array([1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0])
        self._increments = np.array([0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0])

    @property
    def ready(self) -> bool:
        return self.n_seen >= 1

    @property
    def value(self) -> float:
        """Current quantile estimate (exact until 5 observations)."""
        if self.n_seen == 0:
            raise ValidationError("P2Quantile has seen no observations")
        if self.n_seen < 5:
            # Exact small-sample quantile over the sorted prefix.
            return float(np.quantile(np.sort(self._heights[: self.n_seen]), self.q))
        return float(self._heights[2])

    def update(self, values) -> float:
        values = np.atleast_1d(as_float_array(values, "values")).ravel()
        for x in values:
            self._update_one(float(x))
        return self.value

    def reset(self) -> None:
        self.n_seen = 0
        self._positions = np.arange(1.0, 6.0)
        self._desired = np.array(
            [1.0, 1.0 + 2.0 * self.q, 1.0 + 4.0 * self.q, 3.0 + 2.0 * self.q, 5.0]
        )

    # ------------------------------------------------------------------ internals
    def _update_one(self, x: float) -> None:
        if self.n_seen < 5:
            self._heights[self.n_seen] = x
            self.n_seen += 1
            if self.n_seen == 5:
                self._heights.sort()
            return
        self.n_seen += 1
        h = self._heights
        if x < h[0]:
            h[0] = x
            cell = 0
        elif x >= h[4]:
            h[4] = x
            cell = 3
        else:
            cell = int(np.searchsorted(h, x, side="right")) - 1
            cell = min(max(cell, 0), 3)
        self._positions[cell + 1 :] += 1.0
        self._desired += self._increments
        # Adjust the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            d = self._desired[i] - self._positions[i]
            if (d >= 1.0 and self._positions[i + 1] - self._positions[i] > 1.0) or (
                d <= -1.0 and self._positions[i - 1] - self._positions[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                self._positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        p, h = self._positions, self._heights
        term1 = (p[i] - p[i - 1] + step) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
        term2 = (p[i + 1] - p[i] - step) * (h[i] - h[i - 1]) / (p[i] - p[i - 1])
        return h[i] + step / (p[i + 1] - p[i - 1]) * (term1 + term2)

    def _linear(self, i: int, step: float) -> float:
        p, h = self._positions, self._heights
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (p[j] - p[i])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"P2Quantile(q={self.q}, n_seen={self.n_seen})"


class P2QuantileThreshold:
    """Bounded-memory threshold: P² tracking of ``1 - contamination``.

    The O(1)-state sibling of
    :class:`~repro.detectors.threshold.StreamingQuantileThreshold` with
    the same surface, so detectors can swap trackers freely.
    """

    def __init__(self, contamination: float):
        self.contamination = check_in_range(
            contamination, 0.0, 0.5, "contamination", inclusive=(False, False)
        )
        self._tracker = P2Quantile(1.0 - self.contamination)

    @property
    def ready(self) -> bool:
        return self._tracker.n_seen >= 2

    @property
    def value(self) -> float:
        if not self.ready:
            raise ValidationError(
                "need at least 2 scores before a quantile threshold exists"
            )
        return self._tracker.value

    @property
    def n_seen(self) -> int:
        return self._tracker.n_seen

    def update(self, scores) -> float | None:
        self._tracker.update(scores)
        return self.value if self.ready else None

    def learned(self) -> LearnedThreshold:
        return LearnedThreshold(
            value=self.value, criterion="quantile-p2", objective=self.contamination
        )

    def reset(self) -> None:
        self._tracker.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"P2QuantileThreshold(contamination={self.contamination}, "
            f"n_seen={self.n_seen})"
        )


def make_threshold(
    contamination: float, mode: str = "window", capacity: int = 1024
):
    """Build a streaming threshold tracker from a config string.

    ``mode="window"`` → the exact ring-buffer tracker (memory
    O(``capacity``), trailing-window semantics); ``mode="p2"`` → the
    O(1)-memory P² approximation over the whole stream.
    """
    if mode == "window":
        return StreamingQuantileThreshold(contamination, capacity=check_int(
            capacity, "capacity", minimum=2))
    if mode == "p2":
        return P2QuantileThreshold(contamination)
    raise ValidationError(f"unknown threshold mode {mode!r}; use 'window' or 'p2'")
