"""Drift-aware online thresholds for unbounded score streams.

Two quantile trackers back the streaming decision boundary:

* :class:`~repro.detectors.threshold.StreamingQuantileThreshold`
  (re-exported here) — the *exact* tracker: a ring buffer of the last
  ``capacity`` scores whose quantile is re-read after every update.
  Memory is O(capacity); the threshold reflects exactly the trailing
  window, so it forgets old regimes at the window rate.
* :class:`P2Quantile` / :class:`P2QuantileThreshold` — the Jain &
  Chlamtac P² algorithm: five markers track the target quantile with
  O(1) memory over the *whole* stream, no buffer at all.  The estimate
  is approximate (parabolic interpolation between markers) but
  converges on stationary streams; use it when even a score ring is too
  much state, or when the threshold should average over the full
  history rather than a trailing window.

Both expose the same ``update(scores) -> float`` / ``value`` /
``ready`` / ``reset()`` surface, which is the threshold contract
:class:`~repro.streaming.online.StreamingDetector` consumes;
:func:`make_threshold` builds either flavour from a config string.

The sharded streaming tier needs one more property the P² estimator
cannot offer: *mergeability*.  N shards each track their own substream
of scores, and the coordinator must read a single global boundary from
the union.  :class:`QuantileSketch` / :class:`SketchQuantileThreshold`
provide that (a t-digest-style centroid sketch whose merge is exact
commutative and whose estimate is exact until compression kicks in),
and :class:`FederatedThreshold` federates N shard-local trackers —
ring-buffer windows or sketches — behind the same threshold contract.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.threshold import LearnedThreshold, StreamingQuantileThreshold
from repro.exceptions import ValidationError
from repro.utils.validation import as_float_array, check_in_range, check_int

__all__ = [
    "StreamingQuantileThreshold",
    "P2Quantile",
    "P2QuantileThreshold",
    "QuantileSketch",
    "SketchQuantileThreshold",
    "FederatedThreshold",
    "make_threshold",
]


class P2Quantile:
    """P² single-quantile estimator (Jain & Chlamtac 1985), O(1) memory.

    Five markers hold (estimated) heights at the min, the q/2, q,
    (1+q)/2 quantiles and the max; every observation shifts the marker
    positions and adjusts heights by piecewise-parabolic (falling back
    to linear) interpolation.  Until five observations arrive the
    estimate is exact (order statistic of the seen values).
    """

    def __init__(self, q: float):
        self.q = check_in_range(q, 0.0, 1.0, "q", inclusive=(False, False))
        self.n_seen = 0
        self._heights = np.empty(5)
        # Marker positions (1-indexed as in the paper) and their targets.
        self._positions = np.arange(1.0, 6.0)
        self._desired = np.array([1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0])
        self._increments = np.array([0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0])

    @property
    def ready(self) -> bool:
        return self.n_seen >= 1

    @property
    def value(self) -> float:
        """Current quantile estimate (exact until 5 observations)."""
        if self.n_seen == 0:
            raise ValidationError("P2Quantile has seen no observations")
        if self.n_seen < 5:
            # Exact small-sample quantile over the sorted prefix.
            return float(np.quantile(np.sort(self._heights[: self.n_seen]), self.q))
        return float(self._heights[2])

    def update(self, values) -> float:
        values = np.atleast_1d(as_float_array(values, "values")).ravel()
        for x in values:
            self._update_one(float(x))
        return self.value

    def reset(self) -> None:
        self.n_seen = 0
        self._positions = np.arange(1.0, 6.0)
        self._desired = np.array(
            [1.0, 1.0 + 2.0 * self.q, 1.0 + 4.0 * self.q, 3.0 + 2.0 * self.q, 5.0]
        )

    # ------------------------------------------------------------------ internals
    def _update_one(self, x: float) -> None:
        if self.n_seen < 5:
            self._heights[self.n_seen] = x
            self.n_seen += 1
            if self.n_seen == 5:
                self._heights.sort()
            return
        self.n_seen += 1
        h = self._heights
        if x < h[0]:
            h[0] = x
            cell = 0
        elif x >= h[4]:
            h[4] = x
            cell = 3
        else:
            cell = int(np.searchsorted(h, x, side="right")) - 1
            cell = min(max(cell, 0), 3)
        self._positions[cell + 1 :] += 1.0
        self._desired += self._increments
        # Adjust the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            d = self._desired[i] - self._positions[i]
            if (d >= 1.0 and self._positions[i + 1] - self._positions[i] > 1.0) or (
                d <= -1.0 and self._positions[i - 1] - self._positions[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                self._positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        p, h = self._positions, self._heights
        term1 = (p[i] - p[i - 1] + step) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
        term2 = (p[i + 1] - p[i] - step) * (h[i] - h[i - 1]) / (p[i] - p[i - 1])
        return h[i] + step / (p[i + 1] - p[i - 1]) * (term1 + term2)

    def _linear(self, i: int, step: float) -> float:
        p, h = self._positions, self._heights
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (p[j] - p[i])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"P2Quantile(q={self.q}, n_seen={self.n_seen})"


class P2QuantileThreshold:
    """Bounded-memory threshold: P² tracking of ``1 - contamination``.

    The O(1)-state sibling of
    :class:`~repro.detectors.threshold.StreamingQuantileThreshold` with
    the same surface, so detectors can swap trackers freely.
    """

    def __init__(self, contamination: float):
        self.contamination = check_in_range(
            contamination, 0.0, 0.5, "contamination", inclusive=(False, False)
        )
        self._tracker = P2Quantile(1.0 - self.contamination)

    @property
    def ready(self) -> bool:
        return self._tracker.n_seen >= 2

    @property
    def value(self) -> float:
        if not self.ready:
            raise ValidationError(
                "need at least 2 scores before a quantile threshold exists"
            )
        return self._tracker.value

    @property
    def n_seen(self) -> int:
        return self._tracker.n_seen

    def update(self, scores) -> float | None:
        self._tracker.update(scores)
        return self.value if self.ready else None

    def learned(self) -> LearnedThreshold:
        return LearnedThreshold(
            value=self.value, criterion="quantile-p2", objective=self.contamination
        )

    def reset(self) -> None:
        self._tracker.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"P2QuantileThreshold(contamination={self.contamination}, "
            f"n_seen={self.n_seen})"
        )


class QuantileSketch:
    """Mergeable quantile sketch: sorted weighted centroids, t-digest style.

    The state is a *multiset* of ``(mean, weight)`` centroids kept in
    canonical order (sorted by mean, then weight).  New observations
    enter as weight-1 singletons; once the centroid count exceeds
    ``compression``, adjacent centroids are folded into ``compression``
    equal-weight buckets.  Consequences:

    * **Exact until compressed** — while ``n_seen <= compression`` every
      centroid is a singleton and :meth:`quantile` returns
      ``np.quantile`` of the observations, bit for bit.
    * **Commutative merge, exactly** — :meth:`merge` concatenates the
      two centroid multisets and re-canonicalizes, so
      ``a.merge(b)`` and ``b.merge(a)`` hold identical state.
    * **Associative within tolerance** — exact while no compression
      triggers; once it does, differently-parenthesized merges agree to
      the bucket resolution (pinned by the property suite).

    Unlike the ring tracker this summarizes the *whole* stream in
    O(``compression``) memory — the mergeable counterpart of the P²
    estimator, which cannot be merged at all.
    """

    def __init__(self, compression: int = 256):
        self.compression = check_int(compression, "compression", minimum=8)
        self._means = np.empty(0)
        self._weights = np.empty(0)
        self.n_seen = 0

    # ------------------------------------------------------------------ state
    def _canonicalize(self, means: np.ndarray, weights: np.ndarray) -> None:
        order = np.lexsort((weights, means))
        means, weights = means[order], weights[order]
        if means.size > self.compression:
            total = weights.sum()
            cum = np.cumsum(weights)
            # Bucket by the centroid's cumulative-weight midpoint.
            mid = cum - weights / 2.0
            bucket = np.minimum(
                (mid / total * self.compression).astype(np.int64),
                self.compression - 1,
            )
            folded_w = np.bincount(bucket, weights=weights,
                                   minlength=self.compression)
            folded_m = np.bincount(bucket, weights=weights * means,
                                   minlength=self.compression)
            keep = folded_w > 0
            means = folded_m[keep] / folded_w[keep]
            weights = folded_w[keep]
        self._means, self._weights = means, weights

    def update(self, values) -> None:
        """Fold observations in (weight-1 centroids, then re-canonicalize)."""
        values = np.atleast_1d(as_float_array(values, "values")).ravel()
        if values.size == 0:
            return
        self.n_seen += values.size
        self._canonicalize(
            np.concatenate([self._means, values]),
            np.concatenate([self._weights, np.ones(values.size)]),
        )

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Combined sketch over both streams (inputs untouched)."""
        if not isinstance(other, QuantileSketch):
            raise ValidationError(
                f"can only merge QuantileSketch, got {type(other).__name__}"
            )
        merged = QuantileSketch(max(self.compression, other.compression))
        merged.n_seen = self.n_seen + other.n_seen
        merged._canonicalize(
            np.concatenate([self._means, other._means]),
            np.concatenate([self._weights, other._weights]),
        )
        return merged

    @classmethod
    def merged(cls, sketches) -> "QuantileSketch":
        """Fold any number of sketches into one (left fold of :meth:`merge`)."""
        sketches = list(sketches)
        if not sketches:
            raise ValidationError("merged() needs at least one sketch")
        result = sketches[0]
        for sketch in sketches[1:]:
            result = result.merge(sketch)
        return result

    # ------------------------------------------------------------------ queries
    @property
    def ready(self) -> bool:
        return self.n_seen >= 1

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (exact while uncompressed)."""
        q = check_in_range(q, 0.0, 1.0, "q", inclusive=(True, True))
        if self.n_seen == 0:
            raise ValidationError("QuantileSketch has seen no observations")
        if self._means.size == self.n_seen:
            # All singletons: defer to np.quantile for bit-exactness with
            # the batch path (its >= 0.5 lerp branch differs from interp).
            return float(np.quantile(self._means, q))
        cum = np.cumsum(self._weights)
        centers = cum - (self._weights + 1.0) / 2.0
        pos = q * (cum[-1] - 1.0)
        return float(np.interp(pos, centers, self._means))

    def reset(self) -> None:
        self._means = np.empty(0)
        self._weights = np.empty(0)
        self.n_seen = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantileSketch(compression={self.compression}, "
            f"centroids={self._means.size}, n_seen={self.n_seen})"
        )


class SketchQuantileThreshold:
    """Mergeable streaming threshold over a :class:`QuantileSketch`.

    Same surface as :class:`StreamingQuantileThreshold` /
    :class:`P2QuantileThreshold`, plus :meth:`merge` — shard trackers
    combine into one tracker whose value reflects the union stream.
    """

    def __init__(self, contamination: float, compression: int = 256):
        self.contamination = check_in_range(
            contamination, 0.0, 0.5, "contamination", inclusive=(False, False)
        )
        self.sketch = QuantileSketch(compression)

    @property
    def ready(self) -> bool:
        return self.sketch.n_seen >= 2

    @property
    def n_seen(self) -> int:
        return self.sketch.n_seen

    @property
    def value(self) -> float:
        if not self.ready:
            raise ValidationError(
                "need at least 2 scores before a quantile threshold exists"
            )
        return self.sketch.quantile(1.0 - self.contamination)

    def update(self, scores) -> float | None:
        self.sketch.update(scores)
        return self.value if self.ready else None

    def merge(self, other: "SketchQuantileThreshold") -> "SketchQuantileThreshold":
        if not isinstance(other, SketchQuantileThreshold):
            raise ValidationError(
                f"can only merge SketchQuantileThreshold, got {type(other).__name__}"
            )
        merged = SketchQuantileThreshold(
            self.contamination, compression=self.sketch.compression
        )
        merged.sketch = self.sketch.merge(other.sketch)
        return merged

    @classmethod
    def merged(cls, trackers) -> "SketchQuantileThreshold":
        trackers = list(trackers)
        if not trackers:
            raise ValidationError("merged() needs at least one tracker")
        result = trackers[0]
        for tracker in trackers[1:]:
            result = result.merge(tracker)
        return result

    def learned(self) -> LearnedThreshold:
        return LearnedThreshold(
            value=self.value, criterion="quantile-sketch", objective=self.contamination
        )

    def reset(self) -> None:
        self.sketch.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SketchQuantileThreshold(contamination={self.contamination}, "
            f"n_seen={self.n_seen})"
        )


class FederatedThreshold:
    """One decision boundary over N shard-local score trackers.

    Each shard's round-robin score substream feeds its own tracker;
    :attr:`value` reads the boundary of the *union*:

    * ``mode="window"`` — per-shard ring trackers of capacity
      ``capacity / n_shards``.  Because round-robin dispatch makes the
      union of the shard windows exactly the trailing global score
      window, ``np.quantile`` over the concatenated window multisets
      equals the single-stream tracker bit for bit.
    * ``mode="sketch"`` — per-shard :class:`SketchQuantileThreshold`;
      the value is the merged sketch's quantile (exact until any shard
      compresses, rank-accurate after).

    ``update`` takes one score array per shard (empty arrays allowed —
    a shard that received no arrivals this chunk).  The P² estimator is
    rejected: its marker state cannot be merged.
    """

    def __init__(
        self,
        contamination: float,
        n_shards: int,
        mode: str = "window",
        capacity: int = 1024,
        compression: int = 256,
    ):
        self.contamination = check_in_range(
            contamination, 0.0, 0.5, "contamination", inclusive=(False, False)
        )
        self.n_shards = check_int(n_shards, "n_shards", minimum=1)
        self.mode = mode
        if mode == "window":
            capacity = check_int(capacity, "capacity", minimum=2 * self.n_shards)
            if capacity % self.n_shards:
                raise ValidationError(
                    f"federated window capacity {capacity} must divide evenly "
                    f"across {self.n_shards} shards"
                )
            self.trackers = [
                StreamingQuantileThreshold(
                    contamination, capacity=capacity // self.n_shards
                )
                for _ in range(self.n_shards)
            ]
        elif mode == "sketch":
            self.trackers = [
                SketchQuantileThreshold(contamination, compression=compression)
                for _ in range(self.n_shards)
            ]
        else:
            raise ValidationError(
                f"federated threshold mode must be 'window' or 'sketch' "
                f"(P2 markers cannot merge), got {mode!r}"
            )

    @property
    def ready(self) -> bool:
        if self.mode == "window":
            return sum(t.size for t in self.trackers) >= 2
        return sum(t.n_seen for t in self.trackers) >= 2

    @property
    def n_seen(self) -> int:
        return sum(t.n_seen for t in self.trackers)

    @property
    def value(self) -> float:
        if not self.ready:
            raise ValidationError(
                "need at least 2 scores before a quantile threshold exists"
            )
        if self.mode == "window":
            pooled = np.concatenate([t.window_scores() for t in self.trackers])
            return float(np.quantile(pooled, 1.0 - self.contamination))
        merged = QuantileSketch.merged([t.sketch for t in self.trackers])
        return merged.quantile(1.0 - self.contamination)

    def update(self, shard_scores) -> float | None:
        """Fold one score array per shard in; returns the fresh boundary."""
        shard_scores = list(shard_scores)
        if len(shard_scores) != self.n_shards:
            raise ValidationError(
                f"expected {self.n_shards} shard score arrays, "
                f"got {len(shard_scores)}"
            )
        for tracker, scores in zip(self.trackers, shard_scores):
            scores = np.atleast_1d(as_float_array(scores, "scores")).ravel()
            if scores.size:
                tracker.update(scores)
        return self.value if self.ready else None

    def learned(self) -> LearnedThreshold:
        criterion = "quantile" if self.mode == "window" else "quantile-sketch"
        return LearnedThreshold(
            value=self.value, criterion=f"{criterion}-federated",
            objective=self.contamination,
        )

    def reset(self) -> None:
        for tracker in self.trackers:
            tracker.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FederatedThreshold(mode={self.mode!r}, shards={self.n_shards}, "
            f"n_seen={self.n_seen})"
        )


def make_threshold(
    contamination: float, mode: str = "window", capacity: int = 1024
):
    """Build a streaming threshold tracker from a config string.

    ``mode="window"`` → the exact ring-buffer tracker (memory
    O(``capacity``), trailing-window semantics); ``mode="p2"`` → the
    O(1)-memory P² approximation over the whole stream;
    ``mode="sketch"`` → the mergeable centroid sketch over the whole
    stream (the flavour the sharded tier can federate).
    """
    if mode == "window":
        return StreamingQuantileThreshold(contamination, capacity=check_int(
            capacity, "capacity", minimum=2))
    if mode == "p2":
        return P2QuantileThreshold(contamination)
    if mode == "sketch":
        return SketchQuantileThreshold(contamination)
    raise ValidationError(
        f"unknown threshold mode {mode!r}; use 'window', 'p2' or 'sketch'"
    )
