"""Drift detection on the stream of outlyingness scores.

A streaming detector's scores are *relative* quantities — each arrival
is ranked against the current reference — so a persistent shift of the
underlying process shows up as a distributional change of the recent
score sample long before any individual score looks anomalous.
:class:`DepthRankDrift` monitors exactly that: it keeps a *baseline*
sample of scores (depth ranks) captured at the last re-reference and a
rolling *recent* window, and compares them with the two-sample
Kolmogorov–Smirnov statistic

    D = sup_x | F_baseline(x) - F_recent(x) |

rejecting at level ``alpha`` when ``D`` exceeds the classical critical
value ``c(alpha) * sqrt((n1 + n2) / (n1 * n2))`` with
``c(alpha) = sqrt(-ln(alpha / 2) / 2)``.  To suppress one-off bursts
(a batch of genuine outliers also shifts the recent window), a drift
event is only emitted after ``patience`` *consecutive* rejections; the
monitor then re-baselines itself on the recent sample and the owning
detector may re-reference its window.

The monitor is O(baseline + recent) memory and never looks at the
curves themselves — it composes with every scorer kind.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import as_float_array, check_in_range, check_int

__all__ = ["DriftEvent", "ks_two_sample", "DepthRankDrift"]


@dataclass(frozen=True)
class DriftEvent:
    """One emitted drift decision.

    Attributes
    ----------
    n_seen:
        Total scores observed by the monitor when the event fired.
    statistic:
        The KS ``D`` of the firing check.
    critical:
        The rejection bound ``D`` exceeded.
    baseline_size, recent_size:
        Sample sizes entering the test.
    """

    n_seen: int
    statistic: float
    critical: float
    baseline_size: int
    recent_size: int


def ks_two_sample(sample_a: np.ndarray, sample_b: np.ndarray) -> float:
    """Two-sample Kolmogorov–Smirnov statistic ``sup |F_a - F_b|``.

    Exact over the pooled support (both ECDFs evaluated at every pooled
    point), dependency-free.
    """
    a = np.sort(np.asarray(sample_a, dtype=np.float64).ravel())
    b = np.sort(np.asarray(sample_b, dtype=np.float64).ravel())
    pooled = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, pooled, side="right") / a.size
    cdf_b = np.searchsorted(b, pooled, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def ks_critical_value(n_a: int, n_b: int, alpha: float) -> float:
    """Classical large-sample two-sample KS rejection bound at ``alpha``."""
    c_alpha = np.sqrt(-0.5 * np.log(alpha / 2.0))
    return float(c_alpha * np.sqrt((n_a + n_b) / (n_a * n_b)))


class DepthRankDrift:
    """Rolling KS monitor over the outlyingness-score stream.

    Parameters
    ----------
    baseline_size:
        Scores captured as the reference distribution (the first
        ``baseline_size`` scores after construction or re-baselining).
    recent_size:
        Rolling window compared against the baseline.
    alpha:
        Test level of each KS check.
    patience:
        Consecutive rejections required before an event is emitted
        (burst suppression); each emission re-baselines the monitor on
        the recent window.
    min_gap:
        Minimum number of scores between two checks (1 = check on every
        update once the recent window is full); spacing checks out
        keeps adjacent tests from reusing almost-identical windows.
    """

    def __init__(
        self,
        baseline_size: int = 256,
        recent_size: int = 128,
        alpha: float = 0.01,
        patience: int = 2,
        min_gap: int = 16,
    ):
        self.baseline_size = check_int(baseline_size, "baseline_size", minimum=8)
        self.recent_size = check_int(recent_size, "recent_size", minimum=8)
        self.alpha = check_in_range(alpha, 0.0, 1.0, "alpha", inclusive=(False, False))
        self.patience = check_int(patience, "patience", minimum=1)
        self.min_gap = check_int(min_gap, "min_gap", minimum=1)
        self._baseline = np.empty(self.baseline_size)
        self._baseline_fill = 0
        self._recent = np.empty(self.recent_size)
        self._recent_fill = 0
        self._cursor = 0
        self._streak = 0
        self._since_check = 0
        self.n_seen = 0
        self.n_checks = 0
        self.events: list[DriftEvent] = []

    # ------------------------------------------------------------------ state
    @property
    def baselined(self) -> bool:
        return self._baseline_fill == self.baseline_size

    @property
    def last_statistic(self) -> float | None:
        return self._last_statistic if self.n_checks else None

    def rebase(self, scores=None) -> None:
        """Re-baseline on ``scores`` (default: the current recent window)."""
        if scores is None:
            scores = self.recent_scores()
        scores = as_float_array(scores, "scores").ravel()
        take = min(scores.size, self.baseline_size)
        self._baseline[:take] = scores[-take:]
        self._baseline_fill = take
        self._recent_fill = 0
        self._cursor = 0
        self._streak = 0
        self._since_check = 0

    def recent_scores(self) -> np.ndarray:
        """The rolling recent window, oldest → newest (a copy)."""
        if self._recent_fill < self.recent_size:
            return self._recent[: self._recent_fill].copy()
        return np.concatenate(
            [self._recent[self._cursor :], self._recent[: self._cursor]]
        )

    # ------------------------------------------------------------------ updates
    def update(self, scores) -> DriftEvent | None:
        """Fold new scores in; returns a :class:`DriftEvent` on drift."""
        scores = np.atleast_1d(as_float_array(scores, "scores")).ravel()
        event = None
        for x in scores:
            self.n_seen += 1
            if self._baseline_fill < self.baseline_size:
                self._baseline[self._baseline_fill] = x
                self._baseline_fill += 1
                continue
            self._recent[self._cursor] = x
            self._cursor = (self._cursor + 1) % self.recent_size
            self._recent_fill = min(self._recent_fill + 1, self.recent_size)
            self._since_check += 1
            if self._recent_fill < self.recent_size or self._since_check < self.min_gap:
                continue
            fired = self._check()
            if fired is not None:
                event = fired
        return event

    def _check(self) -> DriftEvent | None:
        self._since_check = 0
        self.n_checks += 1
        statistic = ks_two_sample(self._baseline, self._recent)
        self._last_statistic = statistic
        critical = ks_critical_value(self.baseline_size, self.recent_size, self.alpha)
        if statistic <= critical:
            self._streak = 0
            return None
        self._streak += 1
        if self._streak < self.patience:
            return None
        event = DriftEvent(
            n_seen=self.n_seen,
            statistic=statistic,
            critical=critical,
            baseline_size=self.baseline_size,
            recent_size=self.recent_size,
        )
        self.events.append(event)
        self.rebase()
        return event

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DepthRankDrift(baseline={self.baseline_size}, "
            f"recent={self.recent_size}, alpha={self.alpha}, "
            f"events={len(self.events)})"
        )
