"""Drift detection on the stream of outlyingness scores.

A streaming detector's scores are *relative* quantities — each arrival
is ranked against the current reference — so a persistent shift of the
underlying process shows up as a distributional change of the recent
score sample long before any individual score looks anomalous.
:class:`DepthRankDrift` monitors exactly that: it keeps a *baseline*
sample of scores (depth ranks) captured at the last re-reference and a
rolling *recent* window, and compares them with the two-sample
Kolmogorov–Smirnov statistic

    D = sup_x | F_baseline(x) - F_recent(x) |

rejecting at level ``alpha`` when ``D`` exceeds the classical critical
value ``c(alpha) * sqrt((n1 + n2) / (n1 * n2))`` with
``c(alpha) = sqrt(-ln(alpha / 2) / 2)``.  To suppress one-off bursts
(a batch of genuine outliers also shifts the recent window), a drift
event is only emitted after ``patience`` *consecutive* rejections; the
monitor then re-baselines itself on the recent sample and the owning
detector may re-reference its window.

The monitor is O(baseline + recent) memory and never looks at the
curves themselves — it composes with every scorer kind.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.telemetry import NULL_TELEMETRY, resolve_telemetry
from repro.utils.validation import as_float_array, check_in_range, check_int

__all__ = ["DriftEvent", "ks_two_sample", "DepthRankDrift", "FederatedDrift"]


@dataclass(frozen=True)
class DriftEvent:
    """One emitted drift decision.

    Attributes
    ----------
    n_seen:
        Total scores observed by the monitor when the event fired.
    statistic:
        The KS ``D`` of the firing check.
    critical:
        The rejection bound ``D`` exceeded.
    baseline_size, recent_size:
        Sample sizes entering the test.
    """

    n_seen: int
    statistic: float
    critical: float
    baseline_size: int
    recent_size: int


def ks_two_sample(sample_a: np.ndarray, sample_b: np.ndarray) -> float:
    """Two-sample Kolmogorov–Smirnov statistic ``sup |F_a - F_b|``.

    Exact over the pooled support (both ECDFs evaluated at every pooled
    point), dependency-free.
    """
    a = np.sort(np.asarray(sample_a, dtype=np.float64).ravel())
    b = np.sort(np.asarray(sample_b, dtype=np.float64).ravel())
    pooled = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, pooled, side="right") / a.size
    cdf_b = np.searchsorted(b, pooled, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def ks_critical_value(n_a: int, n_b: int, alpha: float) -> float:
    """Classical large-sample two-sample KS rejection bound at ``alpha``."""
    c_alpha = np.sqrt(-0.5 * np.log(alpha / 2.0))
    return float(c_alpha * np.sqrt((n_a + n_b) / (n_a * n_b)))


class DepthRankDrift:
    """Rolling KS monitor over the outlyingness-score stream.

    Parameters
    ----------
    baseline_size:
        Scores captured as the reference distribution (the first
        ``baseline_size`` scores after construction or re-baselining).
    recent_size:
        Rolling window compared against the baseline.
    alpha:
        Test level of each KS check.
    patience:
        Consecutive rejections required before an event is emitted
        (burst suppression); each emission re-baselines the monitor on
        the recent window.
    min_gap:
        Minimum number of scores between two checks (1 = check on every
        update once the recent window is full); spacing checks out
        keeps adjacent tests from reusing almost-identical windows.
    """

    def __init__(
        self,
        baseline_size: int = 256,
        recent_size: int = 128,
        alpha: float = 0.01,
        patience: int = 2,
        min_gap: int = 16,
    ):
        self.baseline_size = check_int(baseline_size, "baseline_size", minimum=8)
        self.recent_size = check_int(recent_size, "recent_size", minimum=8)
        self.alpha = check_in_range(alpha, 0.0, 1.0, "alpha", inclusive=(False, False))
        self.patience = check_int(patience, "patience", minimum=1)
        self.min_gap = check_int(min_gap, "min_gap", minimum=1)
        self._baseline = np.empty(self.baseline_size)
        self._baseline_fill = 0
        self._recent = np.empty(self.recent_size)
        self._recent_fill = 0
        self._cursor = 0
        self._streak = 0
        self._since_check = 0
        self.n_seen = 0
        self.n_checks = 0
        self.events: list[DriftEvent] = []
        self.attach_telemetry(NULL_TELEMETRY)

    def attach_telemetry(self, telemetry, kind: str = "-") -> None:
        """Bind the drift check/event counters, labelled by detector kind."""
        telemetry = resolve_telemetry(None, telemetry)
        self._m_checks = telemetry.counter("streaming_drift_checks_total", kind=kind)
        self._m_events = telemetry.counter("streaming_drift_events_total", kind=kind)

    # ------------------------------------------------------------------ state
    @property
    def baselined(self) -> bool:
        return self._baseline_fill == self.baseline_size

    @property
    def last_statistic(self) -> float | None:
        return self._last_statistic if self.n_checks else None

    def rebase(self, scores=None) -> None:
        """Re-baseline on ``scores`` (default: the current recent window)."""
        if scores is None:
            scores = self.recent_scores()
        scores = as_float_array(scores, "scores").ravel()
        take = min(scores.size, self.baseline_size)
        self._baseline[:take] = scores[-take:]
        self._baseline_fill = take
        self._recent_fill = 0
        self._cursor = 0
        self._streak = 0
        self._since_check = 0

    def recent_scores(self) -> np.ndarray:
        """The rolling recent window, oldest → newest (a copy)."""
        if self._recent_fill < self.recent_size:
            return self._recent[: self._recent_fill].copy()
        return np.concatenate(
            [self._recent[self._cursor :], self._recent[: self._cursor]]
        )

    # ------------------------------------------------------------------ updates
    def update(self, scores) -> DriftEvent | None:
        """Fold new scores in; returns a :class:`DriftEvent` on drift."""
        scores = np.atleast_1d(as_float_array(scores, "scores")).ravel()
        event = None
        for x in scores:
            self.n_seen += 1
            if self._baseline_fill < self.baseline_size:
                self._baseline[self._baseline_fill] = x
                self._baseline_fill += 1
                continue
            self._recent[self._cursor] = x
            self._cursor = (self._cursor + 1) % self.recent_size
            self._recent_fill = min(self._recent_fill + 1, self.recent_size)
            self._since_check += 1
            if self._recent_fill < self.recent_size or self._since_check < self.min_gap:
                continue
            fired = self._check()
            if fired is not None:
                event = fired
        return event

    def _check(self) -> DriftEvent | None:
        self._since_check = 0
        self.n_checks += 1
        self._m_checks.inc()
        statistic = ks_two_sample(self._baseline, self._recent)
        self._last_statistic = statistic
        critical = ks_critical_value(self.baseline_size, self.recent_size, self.alpha)
        if statistic <= critical:
            self._streak = 0
            return None
        self._streak += 1
        if self._streak < self.patience:
            return None
        event = DriftEvent(
            n_seen=self.n_seen,
            statistic=statistic,
            critical=critical,
            baseline_size=self.baseline_size,
            recent_size=self.recent_size,
        )
        self.events.append(event)
        self._m_events.inc()
        self.rebase()
        return event

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DepthRankDrift(baseline={self.baseline_size}, "
            f"recent={self.recent_size}, alpha={self.alpha}, "
            f"events={len(self.events)})"
        )


class FederatedDrift:
    """Shard-aggregated KS drift monitor with a coordinated barrier.

    The sharded streaming tier deals the score stream round-robin across
    ``n_shards`` substreams; each substream gets its own baseline/recent
    buffers (an equal ``1/n_shards`` share of the configured sizes), and
    a *single* federated decision is taken per chunk.  Empirical CDFs
    over disjoint substreams are mergeable state: the equal-weight mean
    of the shard ECDFs *is* the ECDF of the pooled sample, so the
    decision statistic is the KS distance between the pooled baselines
    and the pooled recents — for chunk-aligned substreams that pooled
    sample is the same multiset a single
    :class:`DepthRankDrift` would hold, making the federated decision
    sequence identical to the single-stream monitor's.  The per-shard
    statistics ``D_i`` are also computed and exposed
    (:attr:`shard_statistics`) as shard-level diagnostics: a drift
    localized to one shard's substream shows up there first.  The usual
    ``patience`` streak then gates the event.

    On an event every shard re-baselines *together* on its own recent
    window (the coordinated re-reference barrier of the tentpole): no
    shard ever drifts against a different anchor than its siblings, so
    a subsequent re-reference re-anchors all shards on the same global
    window.  :meth:`rebase` exposes the same barrier for the detector's
    re-reference path.

    Checks are chunk-synchronized: :meth:`update` folds one chunk's
    per-shard score splits in and performs at most one check at the
    chunk boundary, so the decision sequence is deterministic for a
    given chunking regardless of shard count.
    """

    def __init__(
        self,
        n_shards: int,
        baseline_size: int = 256,
        recent_size: int = 128,
        alpha: float = 0.01,
        patience: int = 2,
        min_gap: int = 16,
    ):
        self.n_shards = check_int(n_shards, "n_shards", minimum=1)
        self.baseline_size = check_int(baseline_size, "baseline_size", minimum=8)
        self.recent_size = check_int(recent_size, "recent_size", minimum=8)
        if self.baseline_size % self.n_shards or self.recent_size % self.n_shards:
            raise ValidationError(
                f"baseline_size={self.baseline_size} and recent_size="
                f"{self.recent_size} must divide evenly across "
                f"{self.n_shards} shards"
            )
        self._baseline_share = self.baseline_size // self.n_shards
        self._recent_share = self.recent_size // self.n_shards
        if self._baseline_share < 8 or self._recent_share < 8:
            raise ValidationError(
                f"per-shard KS samples need >= 8 scores; got baseline share "
                f"{self._baseline_share}, recent share {self._recent_share}"
            )
        self.alpha = check_in_range(alpha, 0.0, 1.0, "alpha", inclusive=(False, False))
        self.patience = check_int(patience, "patience", minimum=1)
        self.min_gap = check_int(min_gap, "min_gap", minimum=1)
        self._baseline = np.empty((self.n_shards, self._baseline_share))
        self._baseline_fill = np.zeros(self.n_shards, dtype=np.int64)
        self._recent = np.empty((self.n_shards, self._recent_share))
        self._recent_fill = np.zeros(self.n_shards, dtype=np.int64)
        self._cursor = np.zeros(self.n_shards, dtype=np.int64)
        self._streak = 0
        self._since_check = 0
        self._last_statistic: float | None = None
        self.shard_statistics: list[float] | None = None
        self.n_seen = 0
        self.n_checks = 0
        self.events: list[DriftEvent] = []
        self.attach_telemetry(NULL_TELEMETRY)

    def attach_telemetry(self, telemetry, kind: str = "-") -> None:
        """Bind the drift check/event counters, labelled by detector kind."""
        telemetry = resolve_telemetry(None, telemetry)
        self._m_checks = telemetry.counter("streaming_drift_checks_total", kind=kind)
        self._m_events = telemetry.counter("streaming_drift_events_total", kind=kind)

    # ------------------------------------------------------------------ state
    @property
    def baselined(self) -> bool:
        return bool((self._baseline_fill == self._baseline_share).all())

    @property
    def last_statistic(self) -> float | None:
        return self._last_statistic if self.n_checks else None

    def rebase(self) -> None:
        """Barrier re-baseline: every shard anchors on its recent window."""
        for i in range(self.n_shards):
            recent = self._recent_window(i)
            take = min(recent.size, self._baseline_share)
            self._baseline[i, :take] = recent[recent.size - take :]
            self._baseline_fill[i] = take
        self._recent_fill[:] = 0
        self._cursor[:] = 0
        self._streak = 0
        self._since_check = 0

    def _recent_window(self, shard: int) -> np.ndarray:
        fill = int(self._recent_fill[shard])
        if fill < self._recent_share:
            return self._recent[shard, :fill].copy()
        cursor = int(self._cursor[shard])
        return np.concatenate(
            [self._recent[shard, cursor:], self._recent[shard, :cursor]]
        )

    # ------------------------------------------------------------------ updates
    def update(self, shard_scores) -> DriftEvent | None:
        """Fold one chunk's per-shard score splits in; check once after.

        ``shard_scores`` is a length-``n_shards`` sequence, entry ``i``
        holding shard ``i``'s scores from this chunk (possibly empty).
        """
        shard_scores = list(shard_scores)
        if len(shard_scores) != self.n_shards:
            raise ValidationError(
                f"expected scores for {self.n_shards} shards, "
                f"got {len(shard_scores)} entries"
            )
        for i, scores in enumerate(shard_scores):
            scores = np.atleast_1d(as_float_array(scores, "scores")).ravel()
            for x in scores:
                self.n_seen += 1
                if self._baseline_fill[i] < self._baseline_share:
                    self._baseline[i, self._baseline_fill[i]] = x
                    self._baseline_fill[i] += 1
                    continue
                self._recent[i, self._cursor[i]] = x
                self._cursor[i] = (self._cursor[i] + 1) % self._recent_share
                self._recent_fill[i] = min(self._recent_fill[i] + 1, self._recent_share)
                self._since_check += 1
        ready = bool((self._recent_fill == self._recent_share).all())
        if not ready or self._since_check < self.min_gap:
            return None
        return self._check()

    def _check(self) -> DriftEvent | None:
        self._since_check = 0
        self.n_checks += 1
        self._m_checks.inc()
        # Per-shard diagnostics: which substream moved.
        self.shard_statistics = [
            ks_two_sample(self._baseline[i], self._recent[i])
            for i in range(self.n_shards)
        ]
        # The decision statistic aggregates the shard state: the mean of
        # the shard ECDFs is the pooled-sample ECDF (KS is order-free,
        # so raveling the buffers pools the multisets exactly).
        statistic = ks_two_sample(self._baseline.ravel(), self._recent.ravel())
        critical = ks_critical_value(
            self.baseline_size, self.recent_size, self.alpha
        )
        self._last_statistic = statistic
        if statistic <= critical:
            self._streak = 0
            return None
        self._streak += 1
        if self._streak < self.patience:
            return None
        event = DriftEvent(
            n_seen=self.n_seen,
            statistic=statistic,
            critical=critical,
            baseline_size=self.baseline_size,
            recent_size=self.recent_size,
        )
        self.events.append(event)
        self._m_events.inc()
        self.rebase()
        return event

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FederatedDrift(n_shards={self.n_shards}, "
            f"baseline={self.baseline_size}, recent={self.recent_size}, "
            f"alpha={self.alpha}, events={len(self.events)})"
        )
