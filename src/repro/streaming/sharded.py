"""Sharded streaming execution: near-linear scaling via mergeable state.

:class:`ShardedStreamingDetector` partitions one arrival stream across
``N`` shard states by round-robin dispatch (global arrival ``g`` to
shard ``g mod N``) and recovers *single-stream* scores from the shard
states — the shard-then-aggregate discipline of mergeable-sketch
streaming systems, applied to the reference statistics of the depth
scorers:

* each shard holds a :class:`~repro.streaming.window.SlidingWindow`
  (or reservoir) of ``capacity / N`` plus the kind's incremental cache
  (tangent-angle ring, sorted lanes); the union of the shard windows
  *is* the global trailing window
  (:meth:`~repro.streaming.window.SlidingWindow.merged`);
* scoring either sums per-shard *partials* — FUNTA pairwise
  ``(count, angle-sum)`` totals via
  :func:`repro.depth._kernels.funta_partials`, halfspace ``(≤, <)``
  rank counts via :meth:`~repro.streaming.online.SortedLanes.rank_counts`
  — or scores against the merged window-equivalent state (Dir.out
  medians, trimmed FUNTA), so sharded scores match the single-stream
  detector exactly where the merged statistic is exact (halfspace,
  Dir.out, trimmed FUNTA on sliding windows) and to ~1e-12 where only
  floating-point summation order differs (untrimmed FUNTA partials);
* the adaptive threshold is a
  :class:`~repro.streaming.calibrate.FederatedThreshold` over the
  round-robin score substreams (window mode: bit-equal to the single
  tracker) and drift is a
  :class:`~repro.streaming.drift.FederatedDrift` whose rereference
  barrier re-anchors every shard on the same window.

Three executor backends fan the per-shard work out: ``serial`` (in
process, still wins when sharding removes work, e.g. Dir.out lane
maintenance), ``thread`` (persistent thread pool — the numpy kernels
release the GIL, so partial scoring scales with cores) and ``process``
(one persistent worker process per shard holding the shard state
resident; per chunk only the arrival block crosses the boundary, shipped
zero-copy through a :class:`~repro.engine.shared.SharedArrayPool`).
The ``process`` backend requires a partial-scoring configuration
(untrimmed incremental FUNTA, univariate incremental halfspace) because
merged-state kinds need the shard windows in the coordinator.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from repro.depth import _kernels
from repro.engine.shared import SharedArrayPool, attach_arrays, detach_arrays
from repro.exceptions import NotFittedError, ValidationError
from repro.fda.fdata import MFDataGrid, as_mfd
from repro.streaming.calibrate import FederatedThreshold
from repro.streaming.drift import DriftEvent, FederatedDrift
from repro.streaming.online import (
    SortedLanes,
    StreamBatchResult,
    StreamingDetector,
    _DiroutState,
    _FuntaState,
    _HalfspaceState,
)
from repro.streaming.window import ReferenceWindow, ReservoirWindow, SlidingWindow
from repro.telemetry import resolve_telemetry
from repro.utils.validation import check_int

__all__ = ["SHARD_BACKENDS", "ShardedStreamingDetector"]

SHARD_BACKENDS = ("serial", "thread", "process")

_SHARD_KINDS = ("funta", "dirout", "halfspace")


# =====================================================================
# one shard: window + incremental cache, operable in-process or remote
# =====================================================================
class _Shard:
    """State and operations of one shard (picklable construction config).

    Wraps a private single-window :class:`StreamingDetector` purely as
    the holder of the shard's window and incremental scorer cache — its
    ``process``/threshold/drift machinery is never used; the sharded
    coordinator owns those.
    """

    def __init__(self, config: dict):
        capacity = config["capacity"]
        if config["window_kind"] == "reservoir":
            window = ReservoirWindow(capacity, random_state=config["seed"])
        else:
            window = SlidingWindow(capacity)
        self.det = StreamingDetector(
            config["kind"],
            window,
            min_reference=2,
            incremental=config["incremental"],
            aggregation=config["aggregation"],
            block_bytes=config["block_bytes"],
            **config["options"],
        )
        self.det.grid = np.asarray(config["grid"], dtype=np.float64)
        self.det.n_parameters = config["n_parameters"]

    @property
    def window(self) -> ReferenceWindow:
        return self.det.window

    def ingest(self, items: np.ndarray) -> tuple[int, int]:
        if items.shape[0]:
            self.det._ingest(items)
        return self.det.window.n_seen, self.det.window.size

    def reset(self) -> None:
        self.det.window.reset()
        if self.det._scorer is not None:
            self.det._scorer.reset()

    # -------------------------------------------------------------- partials
    def funta_partials(self, items: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-query ``(count, angle-sum)`` totals vs this shard's window.

        Stacked per parameter: ``(p, n_items)`` int64 counts and float
        sums — additive across shards, so the coordinator reconstructs
        the union-reference FUNTA depth from the summed partials.
        """
        det = self.det
        b, _, p = items.shape
        counts = np.zeros((p, b), dtype=np.int64)
        sums = np.zeros((p, b))
        if det.window.size == 0:
            return counts, sums
        state = det._ensure_scorer()
        ref = det.window.values
        theta_pts = state._angles(items) if state.incremental else None
        theta_ref = (
            state._theta[: det.window.size] if state.incremental else None
        )
        for k in range(p):
            counts[k], sums[k] = _kernels.funta_partials(
                items[:, :, k],
                ref[:, :, k],
                det.grid,
                theta_pts=(
                    None if theta_pts is None
                    else np.ascontiguousarray(theta_pts[:, :, k])
                ),
                theta_ref=(
                    None if theta_ref is None
                    else np.ascontiguousarray(theta_ref[:, :, k])
                ),
                block_bytes=det.block_bytes,
            )
        return counts, sums

    def halfspace_counts(self, items: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(≤, <)`` rank counts of the queries in this shard's lanes.

        ``(m, n_items)`` int64 each — exact integers, so the summed
        counts equal the single-window lane counts bit for bit.
        """
        det = self.det
        b, m, _ = items.shape
        if det.window.size == 0:
            zero = np.zeros((m, b), dtype=np.int64)
            return zero, zero.copy()
        state = det._ensure_scorer()
        return state._lanes.rank_counts(items[:, :, 0])


# =====================================================================
# executor backends
# =====================================================================
class _SerialBackend:
    """All shards in the coordinator process, visited in order."""

    name = "serial"

    def __init__(self, configs):
        self.shards = [_Shard(config) for config in configs]

    def run(self, method: str, payloads) -> list:
        return [
            getattr(shard, method)(*payload)
            for shard, payload in zip(self.shards, payloads)
        ]

    def close(self) -> None:
        pass


class _ThreadBackend(_SerialBackend):
    """Persistent thread pool, one task per shard per phase.

    The depth kernels are numpy-bound (boolean slabs, bincounts, sorts)
    and release the GIL, so per-shard partials genuinely overlap.
    """

    name = "thread"

    def __init__(self, configs):
        super().__init__(configs)
        self._pool = ThreadPoolExecutor(max_workers=len(self.shards))

    def run(self, method: str, payloads) -> list:
        futures = [
            self._pool.submit(getattr(shard, method), *payload)
            for shard, payload in zip(self.shards, payloads)
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        self._pool.shutdown(wait=True)


_PROCESS_SHARD: _Shard | None = None


def _process_shard_init(config: dict) -> None:
    global _PROCESS_SHARD
    _PROCESS_SHARD = _Shard(config)


def _process_shard_call(task):
    """Worker entry: attach the chunk zero-copy, run, detach.

    ``task`` is ``(method, refs, rows)``: the chunk block lives in a
    :class:`SharedArrayPool` segment (``refs``), the worker attaches it
    read-only and takes its row subset (a copy, so nothing returned
    aliases shared memory).
    """
    method, refs, rows = task
    arrays, handles = attach_arrays(refs)
    try:
        items = arrays["items"]
        items = items[rows] if rows is not None else np.array(items)
        return getattr(_PROCESS_SHARD, method)(items)
    finally:
        detach_arrays(handles)


def _process_shard_reset(_):
    _PROCESS_SHARD.reset()


class _ProcessBackend:
    """One persistent single-worker process per shard.

    Shard state stays resident in its worker (a ``max_workers=1`` pool
    guarantees affinity); per chunk only the arrival block crosses the
    process boundary, shared zero-copy through a
    :class:`SharedArrayPool` whose segments are unlinked before the
    coordinator returns (the leak gate in CI checks exactly this).
    """

    name = "process"

    def __init__(self, configs):
        self._pools = [
            ProcessPoolExecutor(
                max_workers=1,
                initializer=_process_shard_init,
                initargs=(config,),
            )
            for config in configs
        ]

    def run_shared(self, method: str, items: np.ndarray, rows_per_shard) -> list:
        with SharedArrayPool() as pool:
            refs = pool.share({"items": np.ascontiguousarray(items)})
            futures = [
                worker.submit(_process_shard_call, (method, refs, rows))
                for worker, rows in zip(self._pools, rows_per_shard)
            ]
            return [future.result() for future in futures]

    def reset(self) -> None:
        for worker in self._pools:
            worker.submit(_process_shard_reset, None).result()

    def close(self) -> None:
        for worker in self._pools:
            worker.shutdown(wait=True)


# =====================================================================
# the sharded detector
# =====================================================================
class ShardedStreamingDetector:
    """Single-stream semantics, ``N``-shard execution.

    Mirrors the :class:`~repro.streaming.online.StreamingDetector`
    surface (``process`` / ``prime`` / ``score`` / ``score_samples`` /
    ``stats``), so it drops into the serving layer and the plan
    compiler unchanged.

    Parameters
    ----------
    kind:
        ``"funta"``, ``"dirout"`` or ``"halfspace"`` (``"pipeline"`` is
        single-stream only — its Welford state merges via
        :func:`~repro.streaming.online.merge_moments`, but featurization
        is stateful per pipeline).
    shards:
        Number of shard states. The window ``capacity`` must divide
        evenly, leaving >= 2 slots per shard.
    capacity:
        Total reference window size (split evenly across shards).
    window_kind:
        ``"sliding"`` (exact single-stream equivalence) or
        ``"reservoir"`` (distribution-equivalent union reference).
    threshold:
        Optional :class:`FederatedThreshold` with matching ``n_shards``.
    drift:
        Optional :class:`FederatedDrift` with matching ``n_shards``.
    backend:
        ``"serial"``, ``"thread"`` (default) or ``"process"``.
    seed:
        Master seed for the per-shard reservoir eviction streams.

    Remaining parameters follow :class:`StreamingDetector`.
    """

    def __init__(
        self,
        kind: str,
        *,
        shards: int,
        capacity: int = 128,
        window_kind: str = "sliding",
        threshold: FederatedThreshold | None = None,
        drift: FederatedDrift | None = None,
        min_reference: int = 8,
        update_policy: str = "all",
        on_drift: str = "adapt",
        incremental: bool = True,
        aggregation: str = "integral",
        backend: str = "thread",
        block_bytes: int | None = None,
        context=None,
        seed=None,
        **options,
    ):
        if kind not in _SHARD_KINDS:
            raise ValidationError(
                f"sharded streaming supports kinds {_SHARD_KINDS}, got {kind!r}"
            )
        self.n_shards = check_int(shards, "shards", minimum=1)
        self.capacity = check_int(capacity, "capacity", minimum=2)
        if self.capacity % self.n_shards:
            raise ValidationError(
                f"window capacity {self.capacity} must divide evenly across "
                f"{self.n_shards} shards"
            )
        if self.capacity // self.n_shards < 2:
            raise ValidationError(
                f"window capacity {self.capacity} leaves fewer than 2 slots "
                f"per shard across {self.n_shards} shards"
            )
        if window_kind not in ("sliding", "reservoir"):
            raise ValidationError(
                f"window_kind must be 'sliding' or 'reservoir', got {window_kind!r}"
            )
        if backend not in SHARD_BACKENDS:
            raise ValidationError(
                f"backend must be one of {SHARD_BACKENDS}, got {backend!r}"
            )
        if update_policy not in ("all", "inliers", "none"):
            raise ValidationError(
                f"update_policy must be 'all', 'inliers' or 'none', got {update_policy!r}"
            )
        if on_drift not in ("adapt", "rereference"):
            raise ValidationError(
                f"on_drift must be 'adapt' or 'rereference', got {on_drift!r}"
            )
        if threshold is not None:
            if not isinstance(threshold, FederatedThreshold):
                raise ValidationError(
                    "sharded threshold must be a FederatedThreshold, got "
                    f"{type(threshold).__name__}"
                )
            if threshold.n_shards != self.n_shards:
                raise ValidationError(
                    f"threshold spans {threshold.n_shards} shards, detector "
                    f"has {self.n_shards}"
                )
        if drift is not None:
            if not isinstance(drift, FederatedDrift):
                raise ValidationError(
                    f"sharded drift must be a FederatedDrift, got {type(drift).__name__}"
                )
            if drift.n_shards != self.n_shards:
                raise ValidationError(
                    f"drift monitor spans {drift.n_shards} shards, detector "
                    f"has {self.n_shards}"
                )
        unknown = set(options) - StreamingDetector._ALLOWED_OPTIONS[kind]
        if unknown:
            raise ValidationError(
                f"unknown options for kind {kind!r}: {sorted(unknown)}; "
                f"allowed: {sorted(StreamingDetector._ALLOWED_OPTIONS[kind])}"
            )
        if backend == "process":
            if kind == "dirout":
                raise ValidationError(
                    "the process backend needs a partial-scoring kind; "
                    "Dir.out scores against the merged window — use the "
                    "'thread' or 'serial' backend"
                )
            if kind == "funta" and options.get("trim", 0.0) > 0:
                raise ValidationError(
                    "trimmed FUNTA scores against the merged window and "
                    "cannot use the process backend; use 'thread' or 'serial'"
                )
            if not incremental:
                raise ValidationError(
                    "the process backend requires incremental=True "
                    "(refit scoring needs the merged window)"
                )
        self.kind = kind
        self.window_kind = window_kind
        self.threshold = threshold
        self.drift = drift
        self.min_reference = check_int(min_reference, "min_reference", minimum=2)
        if self.min_reference > self.capacity:
            raise ValidationError(
                f"min_reference={self.min_reference} exceeds the window "
                f"capacity {self.capacity}"
            )
        self.update_policy = update_policy
        self.on_drift = on_drift
        self.incremental = bool(incremental)
        self.aggregation = aggregation
        self.backend = backend
        self.block_bytes = block_bytes
        self.context = context
        self.seed = seed
        self.options = options
        self.grid: np.ndarray | None = None
        self.n_parameters: int | None = None
        self._executor = None
        self._shard_seen = [0] * self.n_shards
        self._scored_count = 0
        self.n_seen = 0
        self.n_scored = 0
        self.n_flagged = 0
        self.n_rereferences = 0
        self.attach_telemetry(resolve_telemetry(context))

    def attach_telemetry(self, telemetry) -> None:
        """Bind this detector's instruments to ``telemetry``'s registry.

        Mirrors :meth:`StreamingDetector.attach_telemetry`, adding the
        shard-level series: per-shard window-fill gauges
        (``streaming_shard_window_fill{shard=i}``) and the partial/merged
        scoring latency histograms (``streaming_merge_seconds{stage=...}``).
        """
        telemetry = resolve_telemetry(None, telemetry)
        self.telemetry = telemetry
        self._m_arrivals = telemetry.counter("streaming_arrivals_total", kind=self.kind)
        self._m_scored = telemetry.counter("streaming_scored_total", kind=self.kind)
        self._m_flagged = telemetry.counter("streaming_flagged_total", kind=self.kind)
        self._m_rereferences = telemetry.counter(
            "streaming_rereferences_total", kind=self.kind
        )
        self._m_process_seconds = telemetry.histogram(
            "streaming_process_seconds", kind=self.kind
        )
        self._m_merge_partials = telemetry.histogram(
            "streaming_merge_seconds", stage="partials"
        )
        self._m_merge_merged = telemetry.histogram(
            "streaming_merge_seconds", stage="merged"
        )
        self._m_shard_fill = [
            telemetry.gauge("streaming_shard_window_fill", shard=str(i))
            for i in range(self.n_shards)
        ]
        if self.drift is not None:
            self.drift.attach_telemetry(telemetry, kind=self.kind)

    # ------------------------------------------------------------------ plumbing
    @property
    def n_reference(self) -> int:
        cap = self.capacity // self.n_shards
        return sum(min(seen, cap) for seen in self._shard_seen)

    @property
    def ready(self) -> bool:
        return self.n_reference >= self.min_reference

    @property
    def window_full(self) -> bool:
        return self.n_reference == self.capacity

    @property
    def drift_events(self) -> list[DriftEvent]:
        return [] if self.drift is None else self.drift.events

    def _coerce(self, data) -> MFDataGrid:
        mfd = as_mfd(data)
        if self.grid is None:
            self.grid = mfd.grid.copy()
            self.n_parameters = mfd.n_parameters
        else:
            if mfd.n_points != self.grid.shape[0] or not np.allclose(mfd.grid, self.grid):
                raise ValidationError("stream batches must share the detector's grid")
            if mfd.n_parameters != self.n_parameters:
                raise ValidationError(
                    f"stream batch has {mfd.n_parameters} parameters, "
                    f"expected {self.n_parameters}"
                )
        return mfd

    @property
    def _partial_mode(self) -> bool:
        """Whether scoring sums shard partials (vs merged-window state)."""
        if not self.incremental:
            return False
        if self.kind == "funta":
            return self.options.get("trim", 0.0) == 0
        if self.kind == "halfspace":
            return self.n_parameters == 1
        return False

    def _ensure_executor(self):
        if self._executor is not None:
            return self._executor
        if self.grid is None:
            raise NotFittedError("the detector has not seen any data yet")
        shard_cap = self.capacity // self.n_shards
        seeds = np.random.SeedSequence(self.seed).generate_state(self.n_shards)
        configs = [
            {
                "kind": self.kind,
                "capacity": shard_cap,
                "window_kind": self.window_kind,
                "seed": int(seeds[i]),
                "grid": self.grid,
                "n_parameters": self.n_parameters,
                "incremental": self.incremental,
                "aggregation": self.aggregation,
                "block_bytes": self.block_bytes,
                "options": dict(self.options),
            }
            for i in range(self.n_shards)
        ]
        if self.backend == "process":
            self._executor = _ProcessBackend(configs)
        elif self.backend == "thread":
            self._executor = _ThreadBackend(configs)
        else:
            self._executor = _SerialBackend(configs)
        return self._executor

    def close(self) -> None:
        """Shut the executor backend down (workers, thread pool)."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def __enter__(self) -> "ShardedStreamingDetector":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ dispatch
    def _ingest(self, items: np.ndarray, mask: np.ndarray | None = None) -> None:
        """Round-robin the (unmasked) items across the shard windows.

        The dispatch counter advances only for ingested items — exactly
        mirroring the single window's ``n_seen``, so the shard union is
        the single-stream trailing window bit for bit.
        """
        executor = self._ensure_executor()
        kept = np.arange(items.shape[0]) if mask is None else np.flatnonzero(mask)
        base = sum(self._shard_seen)
        rows_per_shard = [
            kept[(i - base) % self.n_shards :: self.n_shards]
            for i in range(self.n_shards)
        ]
        if self.backend == "process":
            results = executor.run_shared("ingest", items, rows_per_shard)
        else:
            results = executor.run(
                "ingest", [(items[rows],) for rows in rows_per_shard]
            )
        for i, (n_seen, _size) in enumerate(results):
            self._shard_seen[i] = n_seen
        if self.telemetry.enabled:
            cap = self.capacity // self.n_shards
            for i, seen in enumerate(self._shard_seen):
                self._m_shard_fill[i].set(min(seen, cap))

    def _rereference(self) -> None:
        """Barrier reset: every shard re-anchors on the same (empty) window."""
        executor = self._ensure_executor()
        if self.backend == "process":
            executor.reset()
        else:
            executor.run("reset", [() for _ in range(self.n_shards)])
        self._shard_seen = [0] * self.n_shards
        self._scored_count = 0
        if self.threshold is not None:
            self.threshold.reset()
        self.n_rereferences += 1
        self._m_rereferences.inc()
        if self.telemetry.enabled:
            for gauge in self._m_shard_fill:
                gauge.set(0)

    # ------------------------------------------------------------------ scoring
    def _score_partials(self, items: np.ndarray) -> np.ndarray:
        executor = self._ensure_executor()
        if self.backend == "process":
            all_rows = [None] * self.n_shards  # every worker scores the chunk
            parts = executor.run_shared(
                "funta_partials" if self.kind == "funta" else "halfspace_counts",
                items,
                all_rows,
            )
        else:
            parts = executor.run(
                "funta_partials" if self.kind == "funta" else "halfspace_counts",
                [(items,) for _ in range(self.n_shards)],
            )
        if self.kind == "funta":
            counts = np.sum([part[0] for part in parts], axis=0)  # (p, b)
            sums = np.sum([part[1] for part in parts], axis=0)
            safe = np.maximum(counts, 1)
            depth = np.where(
                counts > 0, 1.0 - (sums / safe) / _kernels._HALF_PI, 1.0
            )
            depth = np.clip(depth, 0.0, 1.0)
            return 1.0 - np.mean(depth, axis=0)
        from repro.depth.functional import aggregate_depth

        le = np.sum([part[0] for part in parts], axis=0)  # (m, b)
        lt = np.sum([part[1] for part in parts], axis=0)
        n_ref = self.n_reference
        profile = (np.minimum(le, n_ref - lt) / n_ref).T
        return 1.0 - aggregate_depth(profile, self.grid, self.aggregation)

    def _merged_window(self) -> ReferenceWindow:
        windows = [shard.window for shard in self._executor.shards]
        if self.window_kind == "sliding":
            return SlidingWindow.merged(windows)
        merged = ReferenceWindow(self.capacity)
        filled = [w.values for w in windows if w.size]
        if filled:
            values = np.concatenate(filled, axis=0)
            merged._values = np.empty((self.capacity, *values.shape[1:]))
            merged._values[: values.shape[0]] = values
            merged.size = values.shape[0]
        merged.n_seen = sum(w.n_seen for w in windows)
        return merged

    def _score_merged(self, items: np.ndarray) -> np.ndarray:
        """Score against the merged window-equivalent state.

        Reuses the single-stream scorer-state code verbatim on the
        merged window, with the incremental caches reconstructed by the
        merge operations (sorted-lane union, theta-ring union) — the
        result is the state a single detector would hold, so the scores
        are the single detector's scores.
        """
        merged = self._merged_window()
        shards = self._executor.shards
        states = [shard.det._ensure_scorer() for shard in shards]
        if self.kind == "funta":
            scorer = _FuntaState(
                self.grid, self.capacity, self.options.get("trim", 0.0),
                self.block_bytes, self.context, self.incremental,
            )
            if self.incremental:
                if self.window_kind == "sliding":
                    scorer._theta = _FuntaState.merged_theta(
                        states, [shard.window for shard in shards]
                    )
                else:
                    filled = [
                        state._theta[: shard.window.size]
                        for state, shard in zip(states, shards)
                        if state._theta is not None and shard.window.size
                    ]
                    scorer._theta = np.concatenate(filled) if filled else None
        elif self.kind == "dirout":
            scorer = _DiroutState(
                self.grid, self.capacity,
                self.options.get("n_directions", 200),
                self.options.get("random_state", 0),
                self.block_bytes, self.context, self.incremental,
                self.n_parameters,
            )
            if scorer.incremental:
                scorer._lanes = SortedLanes.merged(
                    [state._lanes for state in states]
                )
        else:
            scorer = _HalfspaceState(
                self.grid, self.capacity, self.aggregation,
                self.options.get("n_directions", 500),
                self.options.get("random_state", 0),
                self.block_bytes, self.context, self.incremental,
                self.n_parameters,
            )
            if scorer.incremental:
                scorer._lanes = SortedLanes.merged(
                    [state._lanes for state in states]
                )
        return scorer.score(items, merged)

    def _score_items(self, items: np.ndarray) -> np.ndarray:
        if self._partial_mode:
            if self.telemetry.enabled:
                start = time.perf_counter()
                scores = self._score_partials(items)
                self._m_merge_partials.observe(time.perf_counter() - start)
                return scores
            return self._score_partials(items)
        if self.backend == "process":  # pragma: no cover - guarded at init
            raise ValidationError(
                "merged-window scoring is unavailable on the process backend"
            )
        if self.telemetry.enabled:
            start = time.perf_counter()
            scores = self._score_merged(items)
            self._m_merge_merged.observe(time.perf_counter() - start)
            return scores
        return self._score_merged(items)

    def _shard_splits(self, scores: np.ndarray) -> list[np.ndarray]:
        """Round-robin split of a score chunk by global scored index."""
        base = self._scored_count
        return [
            scores[(i - base) % self.n_shards :: self.n_shards]
            for i in range(self.n_shards)
        ]

    # ------------------------------------------------------------------ API
    def prime(self, reference) -> "ShardedStreamingDetector":
        """Bulk-load an initial reference sample (no scoring, no drift)."""
        mfd = self._coerce(reference)
        self._ingest(mfd.values)
        self.n_seen += mfd.n_samples
        self._m_arrivals.inc(mfd.n_samples)
        return self

    def score(self, data) -> np.ndarray:
        """Score a batch against the current union reference — stateless."""
        mfd = self._coerce(data)
        if not self.ready:
            raise NotFittedError(
                f"sharded reference holds {self.n_reference} curves but "
                f"min_reference={self.min_reference}; prime() or process() more data"
            )
        return self._score_items(mfd.values)

    score_samples = score

    def process(self, data) -> StreamBatchResult:
        """One online step: score, threshold, drift-check, ingest.

        The exact step order of the single-stream detector — scores are
        computed against the pre-chunk reference, the federated
        threshold and drift monitors fold the round-robin score splits
        in, a drift event triggers the coordinated re-reference barrier,
        then the chunk is dealt into the shard windows.
        """
        start = time.perf_counter() if self.telemetry.enabled else 0.0
        mfd = self._coerce(data)
        items = mfd.values
        self.n_seen += mfd.n_samples
        self._m_arrivals.inc(mfd.n_samples)
        if not self.ready:
            self._ingest(items)
            if self.telemetry.enabled:
                self._m_process_seconds.observe(time.perf_counter() - start)
            return StreamBatchResult(
                scores=None, flags=None, threshold=None, drift=None,
                n_reference=self.n_reference, warmup=True,
            )
        scores = self._score_items(items)
        self.n_scored += scores.shape[0]
        self._m_scored.inc(scores.shape[0])
        splits = self._shard_splits(scores)
        was_full = self.window_full
        self._scored_count += scores.shape[0]
        threshold_value = None
        flags = None
        if self.threshold is not None:
            threshold_value = self.threshold.update(splits)
            if threshold_value is not None:
                flags = scores > threshold_value
                n_flagged = int(flags.sum())
                self.n_flagged += n_flagged
                self._m_flagged.inc(n_flagged)
        event = None
        if self.drift is not None and was_full:
            event = self.drift.update(splits)
        if event is not None and self.on_drift == "rereference":
            self._rereference()
        if self.update_policy == "none":
            mask = np.zeros(items.shape[0], dtype=bool)
        elif self.update_policy == "inliers" and flags is not None:
            mask = ~flags
        else:
            mask = None
        self._ingest(items, mask)
        if self.telemetry.enabled:
            self._m_process_seconds.observe(time.perf_counter() - start)
        return StreamBatchResult(
            scores=scores, flags=flags, threshold=threshold_value,
            drift=event, n_reference=self.n_reference, warmup=False,
        )

    def stats(self) -> dict:
        """Counters for monitoring (superset of ``StreamingDetector.stats``)."""
        return {
            "kind": self.kind,
            "n_seen": self.n_seen,
            "n_scored": self.n_scored,
            "n_flagged": self.n_flagged,
            "n_reference": self.n_reference,
            "n_rereferences": self.n_rereferences,
            "drift_events": len(self.drift_events),
            "incremental": self.incremental,
            "shards": self.n_shards,
            "backend": self.backend,
            "partial_scoring": bool(self._partial_mode),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedStreamingDetector({self.kind!r}, shards={self.n_shards}, "
            f"backend={self.backend!r}, scored={self.n_scored})"
        )
