"""Streaming detection: online reference maintenance, incremental
scoring, drift-aware thresholds.

The batch stack fixes its reference sample up front; this package
scores *unbounded* curve streams whose reference population evolves:

* :mod:`repro.streaming.window` — sliding-window and reservoir-sampling
  reference maintainers over one preallocated ring buffer, with seeded
  reproducible eviction and ``merged()``/``split()`` shard operations;
* :mod:`repro.streaming.online` — :class:`StreamingDetector`, scoring
  each arrival against the current window through the vectorized depth
  kernels (FUNTA, Dir.out, halfspace profiles) or the fitted-pipeline
  feature path, with reference statistics refreshed incrementally on
  insert/evict instead of refit from scratch;
* :mod:`repro.streaming.calibrate` — streaming quantile thresholds
  (exact ring-buffer window, shared with the batch
  :func:`~repro.detectors.threshold.threshold_from_quantile`, the
  O(1)-memory P² approximation, and the mergeable
  :class:`QuantileSketch` behind the federated threshold);
* :mod:`repro.streaming.drift` — a depth-rank Kolmogorov–Smirnov drift
  monitor emitting re-reference events, plus its shard-aggregated
  :class:`FederatedDrift` variant;
* :mod:`repro.streaming.sharded` — :class:`ShardedStreamingDetector`,
  partitioning one stream across N shard states (round-robin) and
  recovering single-stream scores from merged/partial statistics with
  near-linear throughput scaling.

``repro stream-score`` exposes the subsystem from the CLI (``--shards``
selects the sharded tier), and
:class:`~repro.serving.service.ScoringService` serves registered
streaming detectors next to batch pipelines.
"""

from repro.streaming.calibrate import (
    FederatedThreshold,
    P2Quantile,
    P2QuantileThreshold,
    QuantileSketch,
    SketchQuantileThreshold,
    StreamingQuantileThreshold,
    make_threshold,
)
from repro.streaming.drift import (
    DepthRankDrift,
    DriftEvent,
    FederatedDrift,
    ks_two_sample,
)
from repro.streaming.online import (
    STREAM_KINDS,
    SortedLanes,
    StreamBatchResult,
    StreamingDetector,
    merge_moments,
)
from repro.streaming.sharded import SHARD_BACKENDS, ShardedStreamingDetector
from repro.streaming.window import (
    ReferenceWindow,
    ReservoirWindow,
    SlidingWindow,
    WindowUpdate,
)

__all__ = [
    "SHARD_BACKENDS",
    "STREAM_KINDS",
    "DepthRankDrift",
    "DriftEvent",
    "FederatedDrift",
    "FederatedThreshold",
    "P2Quantile",
    "P2QuantileThreshold",
    "QuantileSketch",
    "ReferenceWindow",
    "ReservoirWindow",
    "ShardedStreamingDetector",
    "SketchQuantileThreshold",
    "SlidingWindow",
    "SortedLanes",
    "StreamBatchResult",
    "StreamingDetector",
    "StreamingQuantileThreshold",
    "WindowUpdate",
    "ks_two_sample",
    "make_threshold",
    "merge_moments",
]
