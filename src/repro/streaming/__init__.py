"""Streaming detection: online reference maintenance, incremental
scoring, drift-aware thresholds.

The batch stack fixes its reference sample up front; this package
scores *unbounded* curve streams whose reference population evolves:

* :mod:`repro.streaming.window` — sliding-window and reservoir-sampling
  reference maintainers over one preallocated ring buffer, with seeded
  reproducible eviction;
* :mod:`repro.streaming.online` — :class:`StreamingDetector`, scoring
  each arrival against the current window through the vectorized depth
  kernels (FUNTA, Dir.out, halfspace profiles) or the fitted-pipeline
  feature path, with reference statistics refreshed incrementally on
  insert/evict instead of refit from scratch;
* :mod:`repro.streaming.calibrate` — streaming quantile thresholds
  (exact ring-buffer window, shared with the batch
  :func:`~repro.detectors.threshold.threshold_from_quantile`, plus the
  O(1)-memory P² approximation);
* :mod:`repro.streaming.drift` — a depth-rank Kolmogorov–Smirnov drift
  monitor emitting re-reference events.

``repro stream-score`` exposes the subsystem from the CLI, and
:class:`~repro.serving.service.ScoringService` serves registered
streaming detectors next to batch pipelines.
"""

from repro.streaming.calibrate import (
    P2Quantile,
    P2QuantileThreshold,
    StreamingQuantileThreshold,
    make_threshold,
)
from repro.streaming.drift import DepthRankDrift, DriftEvent, ks_two_sample
from repro.streaming.online import STREAM_KINDS, StreamBatchResult, StreamingDetector
from repro.streaming.window import (
    ReferenceWindow,
    ReservoirWindow,
    SlidingWindow,
    WindowUpdate,
)

__all__ = [
    "STREAM_KINDS",
    "DepthRankDrift",
    "DriftEvent",
    "P2Quantile",
    "P2QuantileThreshold",
    "ReferenceWindow",
    "ReservoirWindow",
    "SlidingWindow",
    "StreamBatchResult",
    "StreamingDetector",
    "StreamingQuantileThreshold",
    "WindowUpdate",
    "ks_two_sample",
    "make_threshold",
]
